package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// newTestServer stands up a Server over a registry holding the fixture
// template as "demo", returning the server (for white-box admission access)
// and an httptest base URL.
func newTestServer(t *testing.T, rcfg RegistryConfig, scfg Config) (*Server, string) {
	t.Helper()
	reg, _ := newTestRegistry(t, rcfg)
	s := NewServer(reg, scfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts.URL
}

func jsonBody(traces [][]float64) *bytes.Reader {
	b, err := json.Marshal(disassembleRequest{Traces: traces})
	if err != nil {
		panic(err)
	}
	return bytes.NewReader(b)
}

func postJSON(t *testing.T, url string, body io.Reader) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeTexts(t *testing.T, data []byte) ([]string, DisassembleResponse) {
	t.Helper()
	var dr DisassembleResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatalf("response not valid JSON: %v\n%s", err, data)
	}
	texts := make([]string, len(dr.Decoded))
	for i, d := range dr.Decoded {
		texts[i] = d.Text
	}
	return texts, dr
}

// TestServeDecodeMatchesSerial pins the headline acceptance criterion: the
// served labels are bitwise-identical to the library's own decode of the
// same traces, and each decision carries a usable confidence record.
func TestServeDecodeMatchesSerial(t *testing.T) {
	_, url := newTestServer(t, RegistryConfig{}, Config{})
	resp, data := postJSON(t, url+"/v1/disassemble/demo?trace=1", jsonBody(fx.traces))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	texts, dr := decodeTexts(t, data)
	if len(texts) != len(fx.want) {
		t.Fatalf("decoded %d instructions, want %d", len(texts), len(fx.want))
	}
	for i := range texts {
		if texts[i] != fx.want[i] {
			t.Fatalf("decode %d = %q, serial reference %q", i, texts[i], fx.want[i])
		}
	}
	for i, d := range dr.Decoded {
		if d.Index != i {
			t.Fatalf("decoded[%d].Index = %d", i, d.Index)
		}
		if d.Confidence <= 0 || d.Confidence > 1 {
			t.Fatalf("decoded[%d] confidence %g outside (0, 1]", i, d.Confidence)
		}
		if len(d.Levels) == 0 || d.Levels[0].Level != "group" {
			t.Fatalf("decoded[%d] has no per-level record: %+v", i, d.Levels)
		}
	}
	if dr.Drift == nil || dr.Drift.State == "" {
		t.Fatalf("v3 template response carries no drift state: %+v", dr.Drift)
	}
	if len(dr.Spans) == 0 {
		t.Fatal("?trace=1 response carries no span tree")
	}
}

// TestServeBinaryBodyMatchesJSON pins the packed-frame input path against
// the JSON one: same traces, same labels.
func TestServeBinaryBodyMatchesJSON(t *testing.T) {
	_, url := newTestServer(t, RegistryConfig{}, Config{})
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(fx.traces)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(fx.traceLen))
	buf.Write(hdr[:])
	var s [8]byte
	for _, tr := range fx.traces {
		for _, v := range tr {
			binary.LittleEndian.PutUint64(s[:], math.Float64bits(v))
			buf.Write(s[:])
		}
	}
	resp, err := http.Post(url+"/v1/disassemble/demo", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	texts, _ := decodeTexts(t, data)
	for i := range texts {
		if texts[i] != fx.want[i] {
			t.Fatalf("binary decode %d = %q, want %q", i, texts[i], fx.want[i])
		}
	}
}

// TestServeRejectsMalformedRequests pins the 4xx mapping: bad JSON, wrong
// trace length, empty batches and truncated binary frames are 400; unknown
// templates are 404 — and every error body is structured JSON.
func TestServeRejectsMalformedRequests(t *testing.T) {
	_, url := newTestServer(t, RegistryConfig{}, Config{})
	checkError := func(resp *http.Response, data []byte, wantStatus int, wantFrag string) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, data)
		}
		var ae apiError
		if err := json.Unmarshal(data, &ae); err != nil || ae.Error == "" {
			t.Fatalf("error body not structured JSON: %s", data)
		}
		if !strings.Contains(ae.Error, wantFrag) {
			t.Fatalf("error %q missing %q", ae.Error, wantFrag)
		}
	}

	resp, data := postJSON(t, url+"/v1/disassemble/demo", strings.NewReader("{not json"))
	checkError(resp, data, http.StatusBadRequest, "invalid JSON")

	short := [][]float64{fx.traces[0][:fx.traceLen-3]}
	resp, data = postJSON(t, url+"/v1/disassemble/demo", jsonBody(short))
	checkError(resp, data, http.StatusBadRequest, fmt.Sprintf("expects %d", fx.traceLen))

	resp, data = postJSON(t, url+"/v1/disassemble/demo", jsonBody(nil))
	checkError(resp, data, http.StatusBadRequest, "empty batch")

	resp, data = postJSON(t, url+"/v1/disassemble/ghost", jsonBody(fx.traces))
	checkError(resp, data, http.StatusNotFound, "unknown template")

	// Binary: header promising more samples than the body carries.
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], 2)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(fx.traceLen))
	buf.Write(hdr[:])
	buf.Write(make([]byte, 16)) // far short of 2 traces
	r, err := http.Post(url+"/v1/disassemble/demo", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(r.Body)
	r.Body.Close()
	checkError(r, data, http.StatusBadRequest, "truncated")

	// Binary: a tiny request whose header declares a near-2^32-trace batch
	// must be rejected by arithmetic on the declared size, not by attempting
	// a ~100 GB allocation.
	binary.LittleEndian.PutUint32(hdr[0:4], math.MaxUint32)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(fx.traceLen))
	r, err = http.Post(url+"/v1/disassemble/demo", "application/octet-stream", bytes.NewReader(hdr[:]))
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(r.Body)
	r.Body.Close()
	checkError(r, data, http.StatusBadRequest, "body limit")
}

// TestServeOverloadSheds pins the backpressure contract: with every decode
// slot held and the queue full, a request is shed with 429 and a
// Retry-After hint instead of queueing without bound.
func TestServeOverloadSheds(t *testing.T) {
	s, url := newTestServer(t, RegistryConfig{}, Config{MaxInFlight: 1, MaxQueue: 0, RetryAfter: 3 * time.Second})
	// MaxQueue 0: no wait queue, so a held slot makes the next request shed.
	release, err := s.adm.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, url+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status with no free slots = %d, want 429: %s", resp.StatusCode, data)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	// Admission runs before the body is read, so an overloaded server sheds
	// even a malformed body with 429 — it never spends parse work (or heap)
	// on a request it cannot serve.
	resp, data = postJSON(t, url+"/v1/disassemble/demo", strings.NewReader("{not json"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded malformed request = %d, want 429 (body must not be parsed outside the gate): %s", resp.StatusCode, data)
	}
	release()
	resp, data = postJSON(t, url+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after release = %d, want 200: %s", resp.StatusCode, data)
	}
}

// TestServeConcurrentRequestsMatchSerial fans 8 concurrent requests at the
// server (the -race coverage for the whole serving path: shared template,
// admission gate, per-request observers) and checks every response against
// the serial reference labels.
func TestServeConcurrentRequestsMatchSerial(t *testing.T) {
	_, url := newTestServer(t, RegistryConfig{}, Config{MaxInFlight: 4, MaxQueue: 16})
	const requests = 8
	var wg sync.WaitGroup
	errs := make(chan error, requests)
	for r := 0; r < requests; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(url+"/v1/disassemble/demo", "application/json", jsonBody(fx.traces))
			if err != nil {
				errs <- err
				return
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d: %s", resp.StatusCode, data)
				return
			}
			var dr DisassembleResponse
			if err := json.Unmarshal(data, &dr); err != nil {
				errs <- err
				return
			}
			for i, d := range dr.Decoded {
				if d.Text != fx.want[i] {
					errs <- fmt.Errorf("concurrent decode %d = %q, want %q", i, d.Text, fx.want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestServeHealthzTemplatesMetrics pins the introspection endpoints:
// healthz reflects registry occupancy, /v1/templates lists statuses, and
// /metrics carries the serving instruments (admission, span drops) in
// Prometheus exposition format.
func TestServeHealthzTemplatesMetrics(t *testing.T) {
	defer obs.SetDefault(nil)
	obs.SetDefault(obs.NewRegistry())
	_, url := newTestServer(t, RegistryConfig{}, Config{})

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	resp, data := get("/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d: %s", resp.StatusCode, data)
	}
	var hz struct {
		OK        bool `json:"ok"`
		Templates int  `json:"templates"`
	}
	if err := json.Unmarshal(data, &hz); err != nil || !hz.OK || hz.Templates != 1 {
		t.Fatalf("healthz body %s (err %v)", data, err)
	}

	// A decode first, so the admission counters have moved.
	resp, data = postJSON(t, url+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode = %d: %s", resp.StatusCode, data)
	}

	resp, data = get("/v1/templates")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("templates = %d", resp.StatusCode)
	}
	var tl struct {
		Templates []TemplateStatus `json:"templates"`
	}
	if err := json.Unmarshal(data, &tl); err != nil || len(tl.Templates) != 1 || !tl.Templates[0].Loaded {
		t.Fatalf("templates body %s (err %v)", data, err)
	}
	if tl.Templates[0].Drift == nil {
		t.Fatal("per-template drift state missing from /v1/templates")
	}

	resp, data = get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics = %d", resp.StatusCode)
	}
	out := string(data)
	for _, want := range []string{
		"parallel_admission_admitted",
		"parallel_admission_inflight",
		"obs_spans_dropped",
		"core_traces_classified",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, out)
		}
	}

	resp, data = get("/metrics.json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics.json = %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics.json not a snapshot: %v", err)
	}
	if snap.Counters["parallel.admission.admitted"] < 1 {
		t.Fatalf("admitted counter = %d after a served decode", snap.Counters["parallel.admission.admitted"])
	}
}

// TestServeHealthzEmptyRegistry pins readiness: a server with no templates
// answers 503, not 200.
func TestServeHealthzEmptyRegistry(t *testing.T) {
	reg, err := NewRegistry(t.TempDir(), RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg, Config{}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty-registry healthz = %d, want 503", resp.StatusCode)
	}
}

// TestServeHealthzAllTemplatesFailed pins readiness against load failures: a
// registry whose every file is known-corrupt answers 503, not a green 200
// while every decode request would be a 503.
func TestServeHealthzAllTemplatesFailed(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	writeTemplate(t, dir, "corrupt", []byte("not a template"))
	reg, err := NewRegistry(dir, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg, Config{}).Handler())
	defer ts.Close()

	// Lazy loading: before any Get the defect is unknown, so readiness stays
	// optimistic.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-load healthz = %d, want 200 (defect not yet observed)", resp.StatusCode)
	}

	// A decode attempt surfaces the load failure; readiness must follow.
	resp, data := postJSON(t, ts.URL+"/v1/disassemble/corrupt", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("corrupt-template decode = %d, want 503: %s", resp.StatusCode, data)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-failed healthz = %d, want 503: %s", resp.StatusCode, data)
	}
	var hz struct {
		OK     bool `json:"ok"`
		Failed int  `json:"failed"`
	}
	if err := json.Unmarshal(data, &hz); err != nil || hz.OK || hz.Failed != 1 {
		t.Fatalf("all-failed healthz body %s (err %v)", data, err)
	}
}

// TestServeAdminReload pins the admin endpoint: a template dropped into the
// directory is served after POST /admin/reload, without a restart.
func TestServeAdminReload(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	writeTemplate(t, dir, "demo", fx.tpl)
	reg, err := NewRegistry(dir, RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg, Config{}).Handler())
	defer ts.Close()

	writeTemplate(t, dir, "late", fx.tpl)
	resp, data := postJSON(t, ts.URL+"/v1/disassemble/late", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unreloaded template = %d, want 404: %s", resp.StatusCode, data)
	}
	resp, err = http.Post(ts.URL+"/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload = %d", resp.StatusCode)
	}
	resp, data = postJSON(t, ts.URL+"/v1/disassemble/late", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reloaded template = %d: %s", resp.StatusCode, data)
	}
}

// TestServeGracefulDrain pins shutdown semantics: Shutdown called while a
// decode is in flight lets that request finish with a full 200 response,
// and Serve returns http.ErrServerClosed.
func TestServeGracefulDrain(t *testing.T) {
	fixture(t)
	// Full-CWT path (no sparse shortcut) so the decode is slow enough to
	// still be in flight when Shutdown fires.
	reg, _ := newTestRegistry(t, RegistryConfig{Sparse: core.SparseOff})
	s := NewServer(reg, Config{MaxInFlight: 1})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- s.Serve(l) }()
	url := "http://" + l.Addr().String()

	// A deliberately heavy batch so the decode is still running when
	// Shutdown fires.
	big := make([][]float64, 0, 64*len(fx.traces))
	for i := 0; i < 64; i++ {
		big = append(big, fx.traces...)
	}
	type result struct {
		status int
		count  int
		err    error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Post(url+"/v1/disassemble/demo", "application/json", jsonBody(big))
		if err != nil {
			resc <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var dr DisassembleResponse
		if err := json.NewDecoder(resp.Body).Decode(&dr); err != nil {
			resc <- result{status: resp.StatusCode, err: err}
			return
		}
		resc <- result{status: resp.StatusCode, count: dr.Count}
	}()

	// Wait for the decode to be admitted, then drain.
	deadline := time.Now().Add(10 * time.Second)
	for s.adm.InFlight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never entered the admission gate")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-resc
	if res.err != nil {
		t.Fatalf("in-flight request during drain: %v", res.err)
	}
	if res.status != http.StatusOK || res.count != len(big) {
		t.Fatalf("drained request = status %d count %d, want 200/%d", res.status, res.count, len(big))
	}
	if err := <-served; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
	// The listener is gone: new connections are refused.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}
