package serve

// Request-tracing tests: traceparent ingestion/echo, span-tree export with
// correct parentage, tail-sampling policy under mixed load, the debug
// endpoints, and exemplar exposure — the serve-level half of the tracing
// pipeline (obs has the unit tests for the pieces).

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// tracedServer stands up a server whose exporter writes into a syncBuffer,
// with an injected tail sampler. Returns the base URL, the export sink, and
// the exporter (Close it before reading the sink).
func tracedServer(t *testing.T, sampler *obs.TailSampler, scfg Config) (string, *syncBuffer, *obs.TraceExporter, string) {
	t.Helper()
	reg, dir := newTestRegistry(t, RegistryConfig{})
	var sink syncBuffer
	exp := obs.NewTraceExporter(&sink, 1024)
	scfg.TraceExporter = exp
	scfg.TraceSampler = sampler
	s := NewServer(reg, scfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts.URL, &sink, exp, dir
}

// echoedTrace parses the response's traceparent echo into its parts.
func echoedTrace(t *testing.T, resp *http.Response) (traceID, spanID string) {
	t.Helper()
	tp := resp.Header.Get("traceparent")
	tid, sid, sampled, ok := obs.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if !sampled {
		t.Fatalf("echoed traceparent %q not flagged sampled", tp)
	}
	return tid.String(), sid.String()
}

func readExportSink(t *testing.T, exp *obs.TraceExporter, sink *syncBuffer) []obs.ExportedTrace {
	t.Helper()
	if err := exp.Close(); err != nil {
		t.Fatal(err)
	}
	traces, err := obs.ReadExportedTraces(strings.NewReader(sink.String()))
	if err != nil {
		t.Fatalf("export sink is not valid trace JSONL: %v", err)
	}
	return traces
}

// TestTraceparentIngestionAndEcho pins the W3C handshake: an incoming
// traceparent fixes the trace ID, flags the trace kept, and links our root
// span under the caller's span; the echo names our root so the caller can
// stitch the trees. Without a header the server mints a fresh ID per request.
func TestTraceparentIngestionAndEcho(t *testing.T) {
	url, sink, exp, _ := tracedServer(t, obs.NewTailSampler(0, nil), Config{})

	const inTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	const inParent = "00f067aa0ba902b7"
	req, _ := http.NewRequest("GET", url+"/livez", nil)
	req.Header.Set("traceparent", "00-"+inTrace+"-"+inParent+"-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	tid, sid := echoedTrace(t, resp)
	if tid != inTrace {
		t.Fatalf("echoed trace ID %s, sent %s", tid, inTrace)
	}
	if sid == inParent || sid == strings.Repeat("0", 16) {
		t.Fatalf("echoed span ID %s must name our root, not the caller's span", sid)
	}

	// No header: fresh, distinct IDs per request.
	r1, err := http.Get(url + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	r1.Body.Close()
	r2, err := http.Get(url + "/livez")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	t1, _ := echoedTrace(t, r1)
	t2, _ := echoedTrace(t, r2)
	if t1 == t2 || t1 == inTrace {
		t.Fatalf("fresh trace IDs not distinct: %s vs %s", t1, t2)
	}

	// The sampled flag on the incoming header forces the keep (rate is 0), and
	// the exported root is parented under the caller's span.
	traces := readExportSink(t, exp, sink)
	if len(traces) != 1 {
		t.Fatalf("exported %d traces, want 1 (only the sampled-flag request)", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != inTrace || tr.Reason != obs.KeepForced {
		t.Fatalf("exported trace = %s reason %q", tr.TraceID, tr.Reason)
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "serve.request" {
		t.Fatalf("exported spans = %+v", tr.Spans)
	}
	if tr.Spans[0].ParentID != inParent {
		t.Fatalf("root parent = %q, want caller span %s", tr.Spans[0].ParentID, inParent)
	}
	if tr.Spans[0].SpanID != sid {
		t.Fatalf("exported root span %s, echoed %s", tr.Spans[0].SpanID, sid)
	}
}

// TestTracedDisassembleExportsFullSpanTree pins the headline acceptance
// criterion: a traced decode exports a span tree whose parentage is intact
// from the middleware root down through admission, body decode, template
// load, and per-trace/per-level classification.
func TestTracedDisassembleExportsFullSpanTree(t *testing.T) {
	url, sink, exp, _ := tracedServer(t, obs.NewTailSampler(0, nil), Config{})

	resp, _ := postJSON(t, url+"/v1/disassemble/demo?trace=1", jsonBody(fx.traces[:2]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	tid, _ := echoedTrace(t, resp)
	reqID := resp.Header.Get("X-Request-Id")

	traces := readExportSink(t, exp, sink)
	if len(traces) != 1 {
		t.Fatalf("exported %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.TraceID != tid {
		t.Fatalf("exported trace %s, echoed %s", tr.TraceID, tid)
	}
	if tr.Route != "disassemble" || tr.Template != "demo" || tr.Status != 200 {
		t.Fatalf("trace envelope = %s/%s/%d", tr.Route, tr.Template, tr.Status)
	}
	if tr.RequestID != reqID || tr.Reason != obs.KeepForced {
		t.Fatalf("request_id=%q reason=%q", tr.RequestID, tr.Reason)
	}
	if tr.Truncated {
		t.Fatal("small trace marked truncated")
	}

	ids := make(map[string]string, len(tr.Spans)) // span ID -> name
	names := make(map[string]int, len(tr.Spans))
	roots := 0
	for _, sp := range tr.Spans {
		ids[sp.SpanID] = sp.Name
		names[sp.Name]++
		if sp.ParentID == "" {
			roots++
		}
		// StartNS is the offset from the trace start, so the root sits at ~0
		// and no span starts before it.
		if sp.DurNS < 0 || sp.StartNS < 0 {
			t.Fatalf("span %s has bad timing: start %d dur %d", sp.Name, sp.StartNS, sp.DurNS)
		}
	}
	if roots != 1 || tr.Spans[0].Name != "serve.request" {
		t.Fatalf("want exactly one root serve.request, got %d roots, first span %q", roots, tr.Spans[0].Name)
	}
	for _, sp := range tr.Spans[1:] {
		if _, ok := ids[sp.ParentID]; !ok {
			t.Fatalf("span %s has dangling parent %q", sp.Name, sp.ParentID)
		}
	}
	for _, want := range []string{
		"serve.request", "parallel.admission.wait", "serve.template.load",
		"serve.decode.body", "core.disassemble", "core.classify", "core.classify.group",
	} {
		if names[want] == 0 {
			t.Fatalf("span tree missing %q; have %v", want, names)
		}
	}
	// One classify span per trace in the batch, each holding its level spans.
	if names["core.classify"] != 2 {
		t.Fatalf("core.classify spans = %d, want one per trace (2)", names["core.classify"])
	}
	// The tree renders (same path scdis trace takes).
	var sb strings.Builder
	if err := obs.WriteTraceTree(&sb, tr); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "serve.request") {
		t.Fatalf("rendered tree:\n%s", sb.String())
	}
}

// TestConcurrentTracedRequestsIsolated is the race test: many in-flight
// traced requests must keep distinct trace identities, leak no spans across
// requests, and leave the exporter with one well-formed JSONL record each.
// Run with -race to make the isolation claim mean something.
func TestConcurrentTracedRequestsIsolated(t *testing.T) {
	url, sink, exp, _ := tracedServer(t, obs.NewTailSampler(0, nil), Config{MaxInFlight: runtime.NumCPU()})

	const workers, perWorker = 12, 4
	var mu sync.Mutex
	seen := make(map[string]bool, workers*perWorker)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(url+"/v1/disassemble/demo?trace=1", "application/json", jsonBody(fx.traces[:1]))
				if err != nil {
					errs <- err
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("status %d", resp.StatusCode)
					return
				}
				tid, _, _, ok := obs.ParseTraceparent(resp.Header.Get("traceparent"))
				if !ok {
					errs <- fmt.Errorf("bad traceparent echo %q", resp.Header.Get("traceparent"))
					return
				}
				mu.Lock()
				if seen[tid.String()] {
					mu.Unlock()
					errs <- fmt.Errorf("trace ID %s issued twice", tid)
					return
				}
				seen[tid.String()] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	traces := readExportSink(t, exp, sink)
	if len(traces) != workers*perWorker {
		t.Fatalf("exported %d traces, want %d", len(traces), workers*perWorker)
	}
	for _, tr := range traces {
		if !seen[tr.TraceID] {
			t.Fatalf("exported trace %s never issued to a client", tr.TraceID)
		}
		delete(seen, tr.TraceID) // each exported exactly once
		roots, classify := 0, 0
		ids := make(map[string]bool, len(tr.Spans))
		for _, sp := range tr.Spans {
			ids[sp.SpanID] = true
			if sp.ParentID == "" {
				roots++
			}
			if sp.Name == "core.classify" {
				classify++
			}
		}
		// Cross-request leakage would show up as extra roots or extra
		// classify spans (every request decodes exactly one trace).
		if roots != 1 || classify != 1 {
			t.Fatalf("trace %s: %d roots, %d classify spans — spans leaked across requests", tr.TraceID, roots, classify)
		}
		for _, sp := range tr.Spans {
			if sp.ParentID != "" && !ids[sp.ParentID] {
				t.Fatalf("trace %s: span %s parent %s not in this trace", tr.TraceID, sp.Name, sp.ParentID)
			}
		}
	}
	if len(seen) != 0 {
		t.Fatalf("%d issued traces never exported", len(seen))
	}
}

// TestTailSamplerMixedLoad proves the keep guarantees end to end: with a
// zero sample rate, healthy traffic exports nothing while every error
// response's trace and every forced trace is kept, labeled with its reason.
func TestTailSamplerMixedLoad(t *testing.T) {
	reg, dir := newTestRegistry(t, RegistryConfig{})
	writeTemplate(t, dir, "bad", []byte("not a template"))
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	var sink syncBuffer
	exp := obs.NewTraceExporter(&sink, 1024)
	s := NewServer(reg, Config{
		TraceExporter: exp,
		TraceSampler:  obs.NewTailSampler(0, nil),
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	for i := 0; i < 5; i++ { // healthy: dropped
		resp, _ := postJSON(t, ts.URL+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthy status %d", resp.StatusCode)
		}
	}
	for i := 0; i < 2; i++ { // 404: client error, dropped
		resp, _ := postJSON(t, ts.URL+"/v1/disassemble/ghost", jsonBody(fx.traces[:1]))
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("ghost status %d", resp.StatusCode)
		}
	}
	wantErrors := 2
	for i := 0; i < wantErrors; i++ { // 503: always kept
		resp, _ := postJSON(t, ts.URL+"/v1/disassemble/bad", jsonBody(fx.traces[:1]))
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("bad-template status %d", resp.StatusCode)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/disassemble/demo?trace=1", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced status %d", resp.StatusCode)
	}

	traces := readExportSink(t, exp, &sink)
	byReason := map[string]int{}
	for _, tr := range traces {
		byReason[tr.Reason]++
		if tr.Reason == obs.KeepError && tr.Status != http.StatusServiceUnavailable {
			t.Fatalf("error-kept trace has status %d", tr.Status)
		}
	}
	if len(traces) != wantErrors+1 {
		t.Fatalf("exported %d traces (%v), want exactly the %d errors + 1 forced", len(traces), byReason, wantErrors)
	}
	if byReason[obs.KeepError] != wantErrors || byReason[obs.KeepForced] != 1 {
		t.Fatalf("keep reasons = %v", byReason)
	}
}

// TestTailSamplerKeepsSlowRequests proves the slow rule end to end: seed the
// sampler's latency baseline with microsecond requests and any real decode
// lands above the p95, exported with reason "slow" despite a zero rate.
func TestTailSamplerKeepsSlowRequests(t *testing.T) {
	baseline := obs.NewHistogram(obs.DurationBuckets())
	for i := 0; i < 100; i++ {
		baseline.Observe(1e-6)
	}
	sampler := obs.NewTailSampler(0, baseline)
	url, sink, exp, _ := tracedServer(t, sampler, Config{})

	resp, _ := postJSON(t, url+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traces := readExportSink(t, exp, sink)
	if len(traces) != 1 || traces[0].Reason != obs.KeepSlow {
		t.Fatalf("slow request not kept as slow: %d traces, reason %q",
			len(traces), func() string {
				if len(traces) > 0 {
					return traces[0].Reason
				}
				return ""
			}())
	}
}

// TestClientRequestIDHonored pins the X-Request-Id contract: a well-formed
// client ID is echoed and logged with its source; hostile or oversized IDs
// degrade safely.
func TestClientRequestIDHonored(t *testing.T) {
	var access syncBuffer
	_, url := newTestServer(t, RegistryConfig{}, Config{AccessLog: &access})

	send := func(id string) *http.Response {
		req, _ := http.NewRequest("GET", url+"/livez", nil)
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	if got := send("client-abc.123").Header.Get("X-Request-Id"); got != "client-abc.123" {
		t.Fatalf("valid client ID not honored: %q", got)
	}
	if got := send("has space").Header.Get("X-Request-Id"); got == "has space" {
		t.Fatal("ID with a space must not be honored")
	}
	if got := send("späcial").Header.Get("X-Request-Id"); strings.Contains(got, "ä") {
		t.Fatal("non-ASCII ID must not be honored")
	}
	// Over-long IDs are rejected wholesale, not truncated: a truncated echo
	// would no longer match what the client logged, and two long IDs sharing
	// a prefix would collide in the access log.
	long := strings.Repeat("x", 200)
	if got := send(long).Header.Get("X-Request-Id"); strings.HasPrefix(got, "x") || len(got) > maxRequestIDLen {
		t.Fatalf("oversized ID must fall back to a generated ID, got %q", got)
	}
	if got := send("").Header.Get("X-Request-Id"); got == "" {
		t.Fatal("no generated ID without a client header")
	}

	// The access log labels each ID with where it came from.
	sources := map[string]string{} // id -> id_source
	for _, line := range strings.Split(strings.TrimSpace(access.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("access line not JSON: %v\n%s", err, line)
		}
		sources[rec["id"].(string)] = rec["id_source"].(string)
		if rec["trace"].(string) == "" {
			t.Fatalf("access line missing trace ID: %s", line)
		}
	}
	if sources["client-abc.123"] != "client" {
		t.Fatalf("honored ID source = %q", sources["client-abc.123"])
	}
	if _, ok := sources[long[:maxRequestIDLen]]; ok {
		t.Fatal("truncated prefix of an oversized client ID must not be logged")
	}
	generated := 0
	for _, src := range sources {
		if src == "generated" {
			generated++
		}
	}
	if generated != 4 { // space, non-ASCII, oversized, empty
		t.Fatalf("generated-source lines = %d, want 4 (%v)", generated, sources)
	}
}

// TestDebugRequestsEndpoint pins the /debug/requests ring: sampled requests
// appear newest-first in JSON and as a text table; dropped (unsampled)
// requests never do; a negative ring size disables the listing.
func TestDebugRequestsEndpoint(t *testing.T) {
	reg, _ := newTestRegistry(t, RegistryConfig{})
	s := NewServer(reg, Config{TraceSampler: obs.NewTailSampler(0, nil)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	resp, _ := postJSON(t, ts.URL+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	forced, _ := postJSON(t, ts.URL+"/v1/disassemble/demo?trace=1", jsonBody(fx.traces[:1]))
	tid, _ := echoedTrace(t, forced)

	r, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Size     int             `json:"size"`
		Requests []requestRecord `json:"requests"`
	}
	if err := json.NewDecoder(r.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if listing.Size != 1 || len(listing.Requests) != 1 {
		t.Fatalf("ring lists %d requests, want only the forced one: %+v", listing.Size, listing.Requests)
	}
	rec := listing.Requests[0]
	if rec.TraceID != tid || rec.Reason != obs.KeepForced || rec.Route != "disassemble" ||
		rec.Template != "demo" || rec.Status != 200 || rec.Spans == 0 {
		t.Fatalf("ring record = %+v", rec)
	}
	if rec.Exported {
		t.Fatal("record claims exported with no exporter configured")
	}

	rt, err := http.Get(ts.URL + "/debug/requests?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := rt.Body.Read(body)
	rt.Body.Close()
	text := string(body[:n])
	if ct := rt.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("text format Content-Type = %q", ct)
	}
	if !strings.Contains(text, "trace") || !strings.Contains(text, tid) {
		t.Fatalf("text table missing the trace:\n%s", text)
	}

	// Negative ring size disables the listing without breaking the endpoint.
	s2 := NewServer(reg, Config{DebugRequests: -1, TraceSampler: obs.NewTailSampler(1, nil)})
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(ts2.Close)
	postJSON(t, ts2.URL+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
	r2, err := http.Get(ts2.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var empty struct {
		Size int `json:"size"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&empty); err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if empty.Size != 0 {
		t.Fatalf("disabled ring lists %d requests", empty.Size)
	}
}

// TestDebugBuildInfoAndInfoMetric pins the build-identity surfaces:
// /debug/buildinfo reports the running binary, and /metrics carries the same
// identity as the scdisd_build_info info metric.
func TestDebugBuildInfoAndInfoMetric(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(nil)
	_, url := newTestServer(t, RegistryConfig{}, Config{})

	r, err := http.Get(url + "/debug/buildinfo")
	if err != nil {
		t.Fatal(err)
	}
	var bi obs.BuildInfo
	if err := json.NewDecoder(r.Body).Decode(&bi); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if bi.GoVersion != runtime.Version() {
		t.Fatalf("buildinfo go_version = %q, runtime says %q", bi.GoVersion, runtime.Version())
	}
	if bi.NumCPU < 1 {
		t.Fatalf("buildinfo num_cpu = %d", bi.NumCPU)
	}

	rm, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(rm.Body)
	rm.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(mbody)
	if !strings.Contains(metrics, "scdisd_build_info{") {
		t.Fatal("/metrics missing scdisd_build_info")
	}
	if !strings.Contains(metrics, `go_version="`+bi.GoVersion+`"`) {
		t.Fatal("info metric go_version does not match /debug/buildinfo")
	}
}

// TestLatencyExemplarsExposed pins the exemplar plumbing end to end: only a
// request whose trace the tail sampler keeps leaves its trace ID as the
// latency histogram's exemplar in /metrics.json — a dropped trace exists
// nowhere, so an exemplar naming it would dead-end — and the classic
// Prometheus text exposition never carries exemplar syntax (a 0.0.4 parser
// reads trailing tokens as a timestamp and fails the scrape).
func TestLatencyExemplarsExposed(t *testing.T) {
	obs.SetDefault(obs.NewRegistry())
	defer obs.SetDefault(nil)
	_, url := newTestServer(t, RegistryConfig{}, Config{})

	// Sample rate 0: a plain 200 is dropped and must not set an exemplar.
	dropped, _ := postJSON(t, url+"/v1/disassemble/demo", jsonBody(fx.traces[:1]))
	if dropped.StatusCode != http.StatusOK {
		t.Fatalf("status %d", dropped.StatusCode)
	}
	droppedTID, _ := echoedTrace(t, dropped)

	forced, _ := postJSON(t, url+"/v1/disassemble/demo?trace=1", jsonBody(fx.traces[:1]))
	if forced.StatusCode != http.StatusOK {
		t.Fatalf("status %d", forced.StatusCode)
	}
	tid, _ := echoedTrace(t, forced)

	rj, err := http.Get(url + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, err := io.ReadAll(rj.Body)
	rj.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The snapshot is indented JSON; match the exemplar's trace_id field.
	if !strings.Contains(string(jbody), `"exemplar"`) ||
		!strings.Contains(string(jbody), `"trace_id": "`+tid+`"`) {
		t.Fatalf("/metrics.json missing exemplar for kept trace %s", tid)
	}
	if strings.Contains(string(jbody), droppedTID) {
		t.Fatalf("/metrics.json names dropped trace %s", droppedTID)
	}

	rm, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody2, err := io.ReadAll(rm.Body)
	rm.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out := string(mbody2); strings.Contains(out, "# {") || strings.Contains(out, "trace_id") {
		t.Fatal("/metrics text exposition carries exemplar syntax")
	}
}
