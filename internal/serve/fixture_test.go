package serve

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/avr"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/power"
)

// The shared fixture trains two small disassemblers once per test process:
// a current (v3, sparse-capable) template and a legacy-normalization one
// (NormScalogram, sparse-incapable — the on-disk shape of old template
// files), plus a matched trace batch and its serial decode as the reference
// labels every handler response must reproduce bitwise.
var fx struct {
	once     sync.Once
	tpl      []byte
	legacy   []byte
	traces   [][]float64
	want     []string
	traceLen int
	err      error
}

func fixtureConfig() core.TrainerConfig {
	cfg := core.DefaultTrainerConfig()
	cfg.Programs = 4
	cfg.TracesPerProgram = 20
	cfg.RegisterPrograms = 0
	cfg.RegisterTracesPerProgram = 0
	return cfg
}

var fixtureClasses = []avr.Class{avr.OpADC, avr.OpAND}

func fixture(t *testing.T) {
	t.Helper()
	fx.once.Do(func() {
		cfg := fixtureConfig()
		d, err := core.TrainSubset(cfg, fixtureClasses, false)
		if err != nil {
			fx.err = err
			return
		}
		var buf bytes.Buffer
		if err := d.Save(&buf); err != nil {
			fx.err = err
			return
		}
		fx.tpl = buf.Bytes()
		fx.traceLen = d.TraceLen()

		legacyCfg := cfg
		legacyCfg.Pipeline.NormMode = features.NormScalogram
		ld, err := core.TrainSubset(legacyCfg, fixtureClasses, false)
		if err != nil {
			fx.err = err
			return
		}
		if ld.SparseCapable() {
			fx.err = errTestFixture("legacy-normalization template is sparse-capable; fixture premise broken")
			return
		}
		var lbuf bytes.Buffer
		if err := ld.Save(&lbuf); err != nil {
			fx.err = err
			return
		}
		fx.legacy = lbuf.Bytes()

		camp, err := power.NewCampaign(cfg.Power, 0, 7117)
		if err != nil {
			fx.err = err
			return
		}
		rng := rand.New(rand.NewSource(41))
		prog := power.NewProgramEnv(cfg.Power, 7117, 5)
		var stream []avr.Instruction
		for _, cl := range fixtureClasses {
			for i := 0; i < 4; i++ {
				stream = append(stream, avr.RandomOperands(rng, cl))
			}
		}
		if fx.traces, err = camp.AcquireSegments(rng, prog, stream); err != nil {
			fx.err = err
			return
		}
		decs, err := d.Disassemble(fx.traces)
		if err != nil {
			fx.err = err
			return
		}
		for _, dec := range decs {
			fx.want = append(fx.want, dec.String())
		}
	})
	if fx.err != nil {
		t.Fatal(fx.err)
	}
}

type errTestFixture string

func (e errTestFixture) Error() string { return string(e) }

// writeTemplate drops the fixture template bytes into dir under name.tpl.
func writeTemplate(t *testing.T, dir, name string, data []byte) string {
	t.Helper()
	path := filepath.Join(dir, name+TemplateExt)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestRegistry builds a registry over a fresh temp dir holding the
// current fixture template as "demo".
func newTestRegistry(t *testing.T, cfg RegistryConfig) (*Registry, string) {
	t.Helper()
	fixture(t)
	dir := t.TempDir()
	writeTemplate(t, dir, "demo", fx.tpl)
	reg, err := NewRegistry(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg, dir
}
