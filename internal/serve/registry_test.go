package serve

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

// TestRegistryLazyLoadAndStatuses pins the lazy-loading contract: scanning
// registers names without reading files, the first Get loads, and Statuses
// reflects the entry lifecycle.
func TestRegistryLazyLoadAndStatuses(t *testing.T) {
	reg, _ := newTestRegistry(t, RegistryConfig{})
	if got := reg.Names(); len(got) != 1 || got[0] != "demo" {
		t.Fatalf("Names = %v, want [demo]", got)
	}
	sts := reg.Statuses()
	if len(sts) != 1 || sts[0].Loaded {
		t.Fatalf("template loaded before first Get: %+v", sts)
	}
	tpl, err := reg.Get("demo")
	if err != nil {
		t.Fatal(err)
	}
	if tpl.traceLen != fx.traceLen {
		t.Fatalf("loaded traceLen %d, want %d", tpl.traceLen, fx.traceLen)
	}
	sts = reg.Statuses()
	if !sts[0].Loaded || sts[0].TraceLen != fx.traceLen {
		t.Fatalf("post-load status %+v", sts[0])
	}
	// A v3 template has a drift baseline: the per-template drift state is
	// exposed in its status.
	if sts[0].Drift == nil {
		t.Fatal("loaded v3 template reports no drift state")
	}
	if _, err := reg.Get("nope"); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("unknown template error = %v, want ErrUnknownTemplate", err)
	}
}

// TestRegistryBadFileIsolated pins per-template defect isolation: a corrupt
// file yields a load error on its own Gets and an Error status, while the
// healthy template keeps serving.
func TestRegistryBadFileIsolated(t *testing.T) {
	reg, dir := newTestRegistry(t, RegistryConfig{})
	writeTemplate(t, dir, "corrupt", []byte("not a gob stream"))
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("corrupt"); err == nil {
		t.Fatal("corrupt template loaded successfully")
	}
	if _, err := reg.Get("demo"); err != nil {
		t.Fatalf("healthy template failed next to a corrupt one: %v", err)
	}
	var corruptStatus, demoStatus *TemplateStatus
	for i := range reg.Statuses() {
		st := reg.Statuses()[i]
		switch st.Name {
		case "corrupt":
			s := st
			corruptStatus = &s
		case "demo":
			s := st
			demoStatus = &s
		}
	}
	if corruptStatus == nil || corruptStatus.Error == "" || corruptStatus.Loaded {
		t.Fatalf("corrupt status = %+v, want an error", corruptStatus)
	}
	if demoStatus == nil || !demoStatus.Loaded {
		t.Fatalf("demo status = %+v, want loaded", demoStatus)
	}
}

// TestRegistryReloadPicksUpChanges pins hot reload: new files appear,
// removed files disappear, and a rewritten file is re-read on the next Get.
func TestRegistryReloadPicksUpChanges(t *testing.T) {
	reg, dir := newTestRegistry(t, RegistryConfig{})
	if _, err := reg.Get("demo"); err != nil {
		t.Fatal(err)
	}

	// New file appears on reload (and not before).
	writeTemplate(t, dir, "second", fx.tpl)
	if _, err := reg.Get("second"); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("unscanned file visible before reload: %v", err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("second"); err != nil {
		t.Fatalf("new template after reload: %v", err)
	}

	// A rewritten file is marked stale and re-read. Rewrite demo as a corrupt
	// file with a distinct mtime so the change is observable.
	path := filepath.Join(dir, "demo"+TemplateExt)
	if err := os.WriteFile(path, []byte("now corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("demo"); err == nil {
		t.Fatal("rewritten (corrupt) template still served from the stale load")
	}

	// Removed files disappear on reload.
	if err := os.Remove(filepath.Join(dir, "second"+TemplateExt)); err != nil {
		t.Fatal(err)
	}
	if err := reg.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get("second"); !errors.Is(err, ErrUnknownTemplate) {
		t.Fatalf("removed template still resolves: %v", err)
	}
}

// TestRegistryReloadNotBlockedBySlowLoad pins the lock decoupling: a slow
// lazy load (the entry mutex held, as Get holds it for the file read) must
// not stall Reload — and with it the registry lock every lookup, Statuses
// and /healthz need — nor Statuses itself. The reload's staleness mark must
// still take effect on the next Get.
func TestRegistryReloadNotBlockedBySlowLoad(t *testing.T) {
	reg, dir := newTestRegistry(t, RegistryConfig{})
	if _, err := reg.Get("demo"); err != nil {
		t.Fatal(err)
	}
	e, err := reg.lookup("demo")
	if err != nil {
		t.Fatal(err)
	}
	e.mu.Lock() // stand-in for a Get stuck reading a slow file

	// Rewrite the file (corrupt, future mtime) so Reload wants to mark the
	// entry stale — the path that used to take e.mu under the registry lock.
	path := filepath.Join(dir, "demo"+TemplateExt)
	if err := os.WriteFile(path, []byte("now corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- reg.Reload() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Reload blocked behind a held entry lock")
	}
	stses := make(chan []TemplateStatus, 1)
	go func() { stses <- reg.Statuses() }()
	select {
	case sts := <-stses:
		// The busy entry reports not-yet-loaded rather than its held state.
		if len(sts) != 1 || sts[0].Loaded || sts[0].Error != "" {
			t.Fatalf("mid-load status = %+v, want a bare pending entry", sts)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Statuses blocked behind a held entry lock")
	}
	e.mu.Unlock()

	// The staleness mark set by the non-blocking Reload forces a re-read:
	// the rewritten (corrupt) file now fails instead of serving stale state.
	if _, err := reg.Get("demo"); err == nil {
		t.Fatal("stale entry not re-read after a reload that raced a load")
	}
}

// TestRegistrySparsePreferenceDegrades pins satellite contract: a registry
// preferring -sparse=on loads a legacy-normalization template anyway,
// serving it via the full-CWT path with the fallback recorded in its status,
// while a capable template in the same directory gets the sparse path.
func TestRegistrySparsePreferenceDegrades(t *testing.T) {
	fixture(t)
	dir := t.TempDir()
	writeTemplate(t, dir, "demo", fx.tpl)
	writeTemplate(t, dir, "old", fx.legacy)
	reg, err := NewRegistry(dir, RegistryConfig{Sparse: core.SparseOn})
	if err != nil {
		t.Fatal(err)
	}
	oldTpl, err := reg.Get("old")
	if err != nil {
		t.Fatalf("legacy template failed to load under -sparse=on: %v", err)
	}
	if !oldTpl.fellBack || oldTpl.sparse {
		t.Fatalf("legacy template state = {fellBack:%v sparse:%v}, want fallback to the full path", oldTpl.fellBack, oldTpl.sparse)
	}
	newTpl, err := reg.Get("demo")
	if err != nil {
		t.Fatal(err)
	}
	if newTpl.fellBack || !newTpl.sparse {
		t.Fatalf("capable template state = {fellBack:%v sparse:%v}, want the sparse path", newTpl.fellBack, newTpl.sparse)
	}
	// Both decode the same batch successfully.
	for _, tpl := range []*loaded{oldTpl, newTpl} {
		if _, err := tpl.d.Disassemble(fx.traces); err != nil {
			t.Fatalf("decode failed (sparse=%v): %v", tpl.sparse, err)
		}
	}
	for _, st := range reg.Statuses() {
		if st.Name == "old" && !st.SparseFellBack {
			t.Fatalf("legacy status does not report the fallback: %+v", st)
		}
		if st.Name == "demo" && st.SparseFellBack {
			t.Fatalf("capable status reports a fallback: %+v", st)
		}
	}
}
