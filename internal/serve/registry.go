// Package serve turns the batch disassembler into a long-running service:
// a versioned registry of trained template files behind an HTTP API, with
// admission control, per-template drift monitoring and hot reload.
//
// The obs scoping rules a server needs differ from a CLI run: the metrics
// registry is installed once at startup (obs.SetDefault is safe to call
// while work runs since the atomic handle-swap rework, but the server never
// needs to), tracers are per-request (created only when a request asks for
// one and discarded with the response, so no process-lifetime span buffer
// fills up), and decision/drift sinks hang off each template entry rather
// than off process globals.
package serve

import (
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// TemplateExt is the file extension the registry scans for. The basename
// without the extension is the template's name — version it by naming
// convention ("demo@2.tpl" serves as template "demo@2").
const TemplateExt = ".tpl"

// ErrUnknownTemplate is returned by Registry.Get for names no scanned file
// provides — the HTTP layer maps it to 404.
var ErrUnknownTemplate = errors.New("serve: unknown template")

// RegistryConfig tunes how templates are loaded.
type RegistryConfig struct {
	// Sparse is the preferred inference path for every template. SparseOn
	// degrades per template to the full-CWT path (with a logged warning and
	// the core.sparse.fallback counter) when a legacy v1/v2 file cannot
	// support it — one old file must not fail the whole registry.
	Sparse core.SparseMode
	// Drift configures each template's covariate-shift monitor. Templates
	// without a baseline (format v1) serve without one.
	Drift obs.DriftConfig
	// Decisions, when non-nil, receives every decision of every template
	// (sampled inside the log). The log keeps its own sequence numbering.
	Decisions *obs.DecisionLog
	// Logger receives load/reload/fallback notices; nil uses slog.Default().
	Logger *slog.Logger
}

// loaded is the live state of one template once its file has been opened.
// Loading is two-phase since schema v4: Get opens the file and decodes only
// its header (cheap — trace length and format answer immediately), and the
// matrix sections materialize into a wired Disassembler on the first decode
// via disassembler(). Gob files have no header/payload split, so they
// materialize eagerly inside load(), preserving the legacy behavior of
// surfacing every defect as a load error.
type loaded struct {
	reg      *Registry
	name     string
	tpl      *core.Template
	traceLen int
	format   core.TemplateFormat
	openedAt time.Time

	mu             sync.Mutex
	d              *core.Disassembler
	drift          *obs.DriftMonitor
	sparse         bool // resolved path (SparseEnabled), not the requested mode
	fellBack       bool // requested sparse-on degraded to the full path
	matErr         error
	materializedAt time.Time
}

// disassembler returns the wired Disassembler, materializing sections on
// the first call. A failure is remembered and returned on every subsequent
// call — a corrupted section cannot turn into a disk-thrash loop.
func (st *loaded) disassembler() (*core.Disassembler, error) {
	return st.reg.materialize(st)
}

// close releases the template's mapping or descriptor. A Disassembler
// already materialized stays valid (its state lives on the heap); an
// unmaterialized handle can no longer materialize — an in-flight request
// racing a reload sees one clean 503 and retries onto the fresh file.
func (st *loaded) close() {
	st.tpl.Close()
}

// entry is one template file the registry knows about. Loading is lazy: the
// file is read on the first Get, under the entry's own mutex so a slow load
// of one template never blocks requests for the others. Reload never takes
// that mutex — it flips the stale flag, checked by the next Get under mu —
// so a slow in-flight load cannot stall a reload (and, via the registry
// lock a reload would otherwise hold, every lookup and health probe).
type entry struct {
	name  string
	path  string
	size  int64 // written only under Registry.mu (scan state, not load state)
	mtime time.Time

	stale atomic.Bool // file changed since the last load; re-read on next Get

	mu      sync.Mutex
	state   *loaded
	loadErr error
}

// Registry maps template names to lazily loaded, hot-reloadable template
// files in one directory. All methods are safe for concurrent use.
type Registry struct {
	dir string
	cfg RegistryConfig
	log *slog.Logger

	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry scans dir for *.tpl files and returns a registry serving them.
// Files are not read yet — loading is lazy — so a directory full of
// defective files still constructs; the defects surface per template on
// first use. The scan itself failing (unreadable directory) is an error.
func NewRegistry(dir string, cfg RegistryConfig) (*Registry, error) {
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	r := &Registry{
		dir:     dir,
		cfg:     cfg,
		log:     cfg.Logger,
		entries: map[string]*entry{},
	}
	if err := r.Reload(); err != nil {
		return nil, err
	}
	return r, nil
}

// Reload rescans the directory: new files appear, removed files disappear,
// and files whose size or mtime changed are marked stale so the next Get
// re-reads them. In-flight requests keep the Disassembler they already
// resolved — a reload never invalidates work mid-request. Returns the scan
// error, if any; individual file defects are per-template, not scan errors.
func (r *Registry) Reload() error {
	names, err := os.ReadDir(r.dir)
	if err != nil {
		return fmt.Errorf("serve: scanning template dir: %w", err)
	}
	seen := map[string]bool{}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, de := range names {
		if de.IsDir() || !strings.HasSuffix(de.Name(), TemplateExt) {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue // raced with a delete; next reload sees the truth
		}
		name := strings.TrimSuffix(de.Name(), TemplateExt)
		seen[name] = true
		path := filepath.Join(r.dir, de.Name())
		if e, ok := r.entries[name]; ok {
			if e.size != info.Size() || !e.mtime.Equal(info.ModTime()) {
				e.size, e.mtime = info.Size(), info.ModTime()
				e.stale.Store(true) // next Get drops the old state and re-reads
				r.log.Info("template changed, will reload", "template", name)
			}
			continue
		}
		r.entries[name] = &entry{name: name, path: path, size: info.Size(), mtime: info.ModTime()}
		r.log.Info("template registered", "template", name, "path", path)
	}
	for name := range r.entries {
		if !seen[name] {
			delete(r.entries, name)
			r.log.Info("template removed", "template", name)
		}
	}
	return nil
}

// Names returns the sorted names of every registered template.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lookup resolves a name to its entry under the read lock.
func (r *Registry) lookup(name string) (*entry, error) {
	r.mu.RLock()
	e := r.entries[name]
	r.mu.RUnlock()
	if e == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTemplate, name)
	}
	return e, nil
}

// Get resolves a template by name, loading its file on first use (and after
// a reload marked it stale). A defective file yields its load error on every
// Get until a reload observes a changed file — the error is remembered, not
// retried per request, so a bad file cannot turn into a disk-thrash loop.
func (r *Registry) Get(name string) (*loaded, error) {
	e, err := r.lookup(name)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stale.Swap(false) {
		if e.state != nil {
			e.state.close() // release the old mmap/fd; live Disassemblers are unaffected
		}
		e.state, e.loadErr = nil, nil
	}
	if e.state == nil && e.loadErr == nil {
		e.state, e.loadErr = r.load(e)
	}
	return e.state, e.loadErr
}

// load opens one template file. Called with the entry lock held. v4 files
// stop at the header — the cold-start path a registry of N devices × M
// firmware revisions needs; gob files decode whole here, as they always
// did, so their defects keep surfacing as load errors.
func (r *Registry) load(e *entry) (*loaded, error) {
	tpl, err := core.OpenTemplate(e.path)
	if err != nil {
		return nil, fmt.Errorf("serve: loading template %q: %w", e.name, err)
	}
	st := &loaded{
		reg: r, name: e.name, tpl: tpl,
		traceLen: tpl.TraceLen(), format: tpl.Format(), openedAt: time.Now(),
	}
	if tpl.Format() == core.FormatGob {
		if _, err := r.materialize(st); err != nil {
			tpl.Close()
			return nil, err
		}
		return st, nil
	}
	r.log.Info("template opened", "template", e.name, "format", string(st.format),
		"trace_len", st.traceLen, "quantized", tpl.Quantized())
	return st, nil
}

// materialize builds and wires the Disassembler on first use: sections are
// loaded and CRC-checked, the preferred sparse mode applied, and the drift
// monitor and decision observer attached. Both the result and a failure are
// remembered for the handle's lifetime.
func (r *Registry) materialize(st *loaded) (*core.Disassembler, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.d != nil || st.matErr != nil {
		return st.d, st.matErr
	}
	d, err := st.tpl.Disassembler()
	if err != nil {
		st.matErr = fmt.Errorf("serve: materializing template %q: %w", st.name, err)
		r.log.Warn("template failed to materialize", "template", st.name, "error", err)
		return nil, st.matErr
	}
	// A legacy (v1/v2) file under -sparse=on degrades to the full path with
	// a warning instead of failing the load — one old template must not take
	// the registry down.
	st.fellBack = d.SetSparseModePreferred(r.cfg.Sparse)
	if st.fellBack {
		r.log.Warn("template cannot run the sparse path; serving via the full CWT",
			"template", st.name, "requested", r.cfg.Sparse.String())
	}
	st.sparse = d.SparseEnabled()
	// Per-template drift monitor; v1 templates lack a baseline and serve
	// without one.
	mon, err := d.NewDriftMonitor(r.cfg.Drift)
	switch {
	case err == nil:
		st.drift = mon
	case errors.Is(err, core.ErrNoDriftBaseline):
		r.log.Info("template predates drift baselines; drift monitoring disabled", "template", st.name)
	default:
		st.matErr = fmt.Errorf("serve: drift monitor for %q: %w", st.name, err)
		return nil, st.matErr
	}
	if st.drift != nil || r.cfg.Decisions != nil {
		d.SetObserver(&core.InferenceObserver{Log: r.cfg.Decisions, Drift: st.drift})
	}
	st.d = d
	st.materializedAt = time.Now()
	r.log.Info("template loaded", "template", st.name, "format", string(st.format),
		"trace_len", st.traceLen, "sparse", st.sparse, "drift", st.drift != nil,
		"resident_bytes", st.tpl.ResidentBytes())
	return d, nil
}

// TemplateStatus is the externally visible state of one registry entry, as
// reported by /v1/templates.
type TemplateStatus struct {
	Name   string `json:"name"`
	Loaded bool   `json:"loaded"`
	// Format is the on-disk format ("gob" or "v4") once the file is opened.
	Format string `json:"format,omitempty"`
	// Resident is true once the matrix sections have materialized into a
	// servable Disassembler. A v4 template is Loaded (header decoded) from
	// the first Get but Resident only after its first decode.
	Resident bool `json:"resident,omitempty"`
	// ResidentBytes counts decoded section bytes held for this template
	// (v4 only; gob decodes are not section-tracked).
	ResidentBytes int64  `json:"resident_bytes,omitempty"`
	Error         string `json:"error,omitempty"`
	TraceLen      int    `json:"trace_len,omitempty"`
	Sparse        bool   `json:"sparse,omitempty"`
	// SparseFellBack is true when the server preferred the sparse path but
	// this template could not support it (legacy format).
	SparseFellBack bool               `json:"sparse_fell_back,omitempty"`
	LoadedAt       time.Time          `json:"loaded_at,omitempty"`
	Drift          *obs.DriftSnapshot `json:"drift,omitempty"`
}

// PublishMetrics exports every template's load and drift state as labeled
// gauges on the default obs registry, so /metrics alone says a template went
// critical or failed reload — without a request in between. Wired as a
// RuntimeCollector sampler by cmd/scdisd; the decode path refreshes the
// drift gauges per batch in addition. scdisd.template.loaded encodes 1
// loaded, 0 registered-but-not-yet-loaded (lazy), -1 load failed.
func (r *Registry) PublishMetrics() {
	reg := obs.Default()
	if reg == nil {
		return
	}
	loadedVec := reg.GaugeVec("scdisd.template.loaded", "template")
	m := srvMet()
	for _, st := range r.Statuses() {
		v := 0.0
		switch {
		case st.Error != "":
			v = -1 // load or materialize failure — either way, unservable
		case st.Loaded:
			v = 1
		}
		loadedVec.With(st.Name).Set(v)
		if st.Drift != nil {
			m.driftState.With(st.Name).Set(driftStateValue(st.Drift.State))
			m.driftScore.With(st.Name).Set(st.Drift.Score)
		}
	}
}

// Close drops every cached template handle, releasing v4 mappings and
// descriptors (gob handles hold no resources). Disassemblers already handed
// to in-flight requests stay valid — their state lives on the heap. The
// registry remains usable: a later Get re-opens the file, so Close is safe
// at daemon shutdown and between benchmark iterations alike.
func (r *Registry) Close() {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	for _, e := range entries {
		e.mu.Lock()
		if e.state != nil {
			e.state.close()
		}
		e.state, e.loadErr = nil, nil
		e.mu.Unlock()
	}
}

// Statuses reports every template's current state without forcing loads:
// an entry never requested yet shows Loaded=false with no error.
func (r *Registry) Statuses() []TemplateStatus {
	names := r.Names()
	out := make([]TemplateStatus, 0, len(names))
	for _, name := range names {
		e, err := r.lookup(name)
		if err != nil {
			continue // removed between Names and lookup
		}
		st := TemplateStatus{Name: name}
		// TryLock: an entry mid-load (mutex held by a Get reading the file)
		// reports as not-yet-loaded instead of stalling the status snapshot
		// — and /healthz, which is built on it — behind the file read.
		if !e.mu.TryLock() {
			out = append(out, st)
			continue
		}
		switch {
		case e.loadErr != nil:
			st.Error = e.loadErr.Error()
		case e.state != nil:
			ls := e.state
			st.Loaded = true
			st.Format = string(ls.format)
			st.TraceLen = ls.traceLen
			st.LoadedAt = ls.openedAt
			// The materialization state lives behind its own lock; TryLock
			// again so a template mid-materialize reports header-only state
			// instead of stalling the snapshot behind the section loads.
			if ls.mu.TryLock() {
				switch {
				case ls.matErr != nil:
					st.Error = ls.matErr.Error()
				case ls.d != nil:
					st.Resident = true
					st.ResidentBytes = ls.tpl.ResidentBytes()
					st.Sparse = ls.sparse
					st.SparseFellBack = ls.fellBack
					if ls.drift != nil {
						snap := ls.drift.Snapshot()
						st.Drift = &snap
					}
				}
				ls.mu.Unlock()
			}
		}
		e.mu.Unlock()
		out = append(out, st)
	}
	return out
}
