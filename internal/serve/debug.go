package serve

// Debug introspection: /debug/requests is a bounded ring of the most recent
// tail-sampled requests (trace ID, status, duration, template), the "what
// just happened" view that needs no exporter or dashboard; /debug/buildinfo
// answers "what binary is this" from debug.ReadBuildInfo. Both are read-only
// and cheap, safe to leave enabled in production.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// requestRecord is one /debug/requests entry — the tail-sampled summary of a
// finished request, pointing at its trace.
type requestRecord struct {
	Time      time.Time `json:"time"`
	TraceID   string    `json:"trace_id"`
	RequestID string    `json:"request_id"`
	Route     string    `json:"route"`
	Template  string    `json:"template,omitempty"`
	Status    int       `json:"status"`
	DurMS     float64   `json:"duration_ms"`
	Reason    string    `json:"sampled"`
	Spans     int       `json:"spans"`
	Truncated bool      `json:"truncated,omitempty"`
	Exported  bool      `json:"exported"`
}

// requestRing is a fixed-size overwrite-oldest ring of requestRecords. Push
// is a short critical section (no allocation); snapshot copies out
// newest-first. A nil ring is a valid no-op (debug ring disabled).
type requestRing struct {
	mu   sync.Mutex
	buf  []requestRecord
	next int
	full bool
}

func newRequestRing(size int) *requestRing {
	if size <= 0 {
		return nil
	}
	return &requestRing{buf: make([]requestRecord, size)}
}

func (g *requestRing) push(rec requestRecord) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.buf[g.next] = rec
	g.next++
	if g.next == len(g.buf) {
		g.next, g.full = 0, true
	}
	g.mu.Unlock()
}

// snapshot returns the ring's records newest-first.
func (g *requestRing) snapshot() []requestRecord {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	n := g.next
	if g.full {
		n = len(g.buf)
	}
	out := make([]requestRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, g.buf[(g.next-i+len(g.buf))%len(g.buf)])
	}
	return out
}

// handleDebugRequests lists the recent sampled requests, newest first — JSON
// by default, a plain-text table with ?format=text (or an Accept header
// preferring text/plain).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	recs := s.ring.snapshot()
	if recs == nil {
		recs = []requestRecord{}
	}
	wantText := r.URL.Query().Get("format") == "text" ||
		strings.HasPrefix(r.Header.Get("Accept"), "text/plain")
	if !wantText {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Size     int             `json:"size"`
			Requests []requestRecord `json:"requests"`
		}{len(recs), recs})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "%-32s %-20s %-12s %-10s %6s %10s %-7s %5s\n",
		"trace", "request", "route", "template", "status", "duration", "kept", "spans")
	for _, rec := range recs {
		dur := fmt.Sprintf("%.1fms", rec.DurMS)
		trunc := ""
		if rec.Truncated {
			trunc = " (truncated)"
		}
		fmt.Fprintf(w, "%-32s %-20s %-12s %-10s %6d %10s %-7s %5d%s\n",
			rec.TraceID, rec.RequestID, rec.Route, rec.Template,
			rec.Status, dur, rec.Reason, rec.Spans, trunc)
	}
}

// handleDebugBuildInfo reports the binary's build identity.
func (s *Server) handleDebugBuildInfo(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(obs.CollectBuildInfo())
}

// buildInfoOnce guards the info-metric registration below against rebinding
// work piling up — the values are static for the process lifetime, but the
// OnDefault hook re-fires on every SetDefault, so collect once.
var buildInfoVal atomic.Pointer[obs.BuildInfo]

func buildInfo() obs.BuildInfo {
	if b := buildInfoVal.Load(); b != nil {
		return *b
	}
	b := obs.CollectBuildInfo()
	buildInfoVal.Store(&b)
	return b
}

func init() {
	// scdisd.build.info is the classic info-metric pattern: constant 1 with
	// the build identity as labels, join-able against any other series. The
	// same fields /debug/buildinfo and the manifest report.
	obs.OnDefault(func(r *obs.Registry) {
		b := buildInfo()
		version := b.Version
		if version == "" {
			version = "unknown"
		}
		revision := b.VCSRevision
		if revision == "" {
			revision = "unknown"
		}
		r.GaugeVec("scdisd.build.info", "go_version", "version", "revision").
			With(b.GoVersion, version, revision).Set(1)
	})
}
