package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// syncBuffer is a goroutine-safe access-log sink: the middleware writes log
// lines from handler goroutines while the test reads them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeRequestTelemetry pins the tentpole: one decode and one 404 must
// show up in the labeled request metrics with route/template/code, the
// latency and admission-wait histograms must record them, each response must
// carry a unique request ID, and the access log must emit one parseable JSON
// line per request with the documented fields.
func TestServeRequestTelemetry(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	var access syncBuffer
	_, url := newTestServer(t, RegistryConfig{}, Config{AccessLog: &access})

	resp, _ := postJSON(t, url+"/v1/disassemble/demo", jsonBody(fx.traces[:2]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("decode status = %d", resp.StatusCode)
	}
	id1 := resp.Header.Get("X-Request-Id")
	resp2, _ := postJSON(t, url+"/v1/disassemble/ghost", jsonBody(fx.traces[:1]))
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost status = %d", resp2.StatusCode)
	}
	id2 := resp2.Header.Get("X-Request-Id")
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Fatalf("request IDs not unique: %q vs %q", id1, id2)
	}

	s := reg.Snapshot()
	req := s.LabeledCounters["scdisd.http.requests.total"]
	if got := req[`route="disassemble",template="demo",code="200"`]; got != 1 {
		t.Fatalf("labeled 200 count = %v (have %v)", got, req)
	}
	if got := req[`route="disassemble",template="ghost",code="404"`]; got != 1 {
		t.Fatalf("labeled 404 count = %v (have %v)", got, req)
	}
	if h := s.LabeledHistograms["scdisd.http.request.seconds"][`route="disassemble",template="demo"`]; h.Count != 1 || h.Sum <= 0 {
		t.Fatalf("latency histogram = %+v", h)
	}
	if h := s.LabeledHistograms["scdisd.http.admission.wait.seconds"][`template="demo"`]; h.Count != 1 {
		t.Fatalf("admission wait histogram = %+v", h)
	}
	if h := s.LabeledHistograms["scdisd.http.request.bytes"][`route="disassemble"`]; h.Count != 2 || h.Max <= 0 {
		t.Fatalf("request bytes histogram = %+v", h)
	}
	if g, ok := s.LabeledGauges["scdisd.template.drift.state"][`template="demo"`]; !ok {
		t.Fatal("no drift state gauge for demo after a decode")
	} else if g < 0 || g > 2 {
		t.Fatalf("drift state gauge = %v", g)
	}
	if s.Gauges["scdisd.http.inflight"] != 0 {
		t.Fatalf("inflight gauge = %v after requests finished", s.Gauges["scdisd.http.inflight"])
	}

	// Access log: one JSON line per request with the documented fields.
	lines := 0
	sc := bufio.NewScanner(strings.NewReader(access.String()))
	for sc.Scan() {
		lines++
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("access log line %d not JSON: %v\n%s", lines, err, sc.Text())
		}
		for _, field := range []string{"id", "route", "template", "status", "bytes_in", "bytes_out", "duration_ms"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("access log line missing %q: %s", field, sc.Text())
			}
		}
		if rec["route"] == "disassemble" && rec["status"].(float64) == 200 {
			if rec["traces"].(float64) != 2 {
				t.Fatalf("decode line traces = %v", rec["traces"])
			}
			if _, ok := rec["admission_wait_ms"]; !ok {
				t.Fatalf("decode line missing admission_wait_ms: %s", sc.Text())
			}
			if _, ok := rec["decode_ms"]; !ok {
				t.Fatalf("decode line missing decode_ms: %s", sc.Text())
			}
		}
	}
	if lines != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", lines, access.String())
	}
}

// Liveness must stay green whenever the process runs; readiness (and its
// /healthz alias) must go red for an unservable registry or a saturated
// admission gate.
func TestServeLivezReadyzSplit(t *testing.T) {
	// Empty registry: alive but not ready.
	emptyReg, err := NewRegistry(t.TempDir(), RegistryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	es := NewServer(emptyReg, Config{})
	ets := httptest.NewServer(es.Handler())
	defer ets.Close()
	for path, want := range map[string]int{
		"/livez":   http.StatusOK,
		"/readyz":  http.StatusServiceUnavailable,
		"/healthz": http.StatusServiceUnavailable,
	} {
		resp, err := http.Get(ets.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("empty registry: GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	// Loaded registry with a saturated gate: alive, not ready, and readiness
	// says why.
	s, url := newTestServer(t, RegistryConfig{}, Config{MaxInFlight: 1, MaxQueue: 0})
	release, err := s.adm.TryAcquire()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(url + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready struct {
		OK        bool `json:"ok"`
		Saturated bool `json:"saturated"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || ready.OK || !ready.Saturated {
		t.Fatalf("saturated readyz = %d %+v", resp.StatusCode, ready)
	}
	if resp, err = http.Get(url + "/livez"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("saturated livez = %d, want 200", resp.StatusCode)
	}
	release()
	if resp, err = http.Get(url + "/readyz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("released readyz = %d, want 200", resp.StatusCode)
	}
}

// writeError must refuse to append error JSON to a response whose body has
// already started — it aborts the connection instead.
func TestWriteErrorAfterBodyStartAborts(t *testing.T) {
	fixture(t)
	reg, _ := newTestRegistry(t, RegistryConfig{})
	s := NewServer(reg, Config{})
	sw := &statusWriter{ResponseWriter: httptest.NewRecorder()}
	if _, err := sw.Write([]byte(`{"partial":`)); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if rec := recover(); rec != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", rec)
		}
	}()
	s.writeError(sw, http.StatusInternalServerError, "too late")
	t.Fatal("writeError returned after the body started")
}

// A batch that fails validation mid-decode (a constant trace passes the
// serve-layer length check but fails core's trace validation) must produce a
// single clean JSON error — never a partial success with an error appended.
func TestServeMidstreamDecodeFailureIsCleanError(t *testing.T) {
	_, url := newTestServer(t, RegistryConfig{}, Config{})
	constant := make([]float64, fx.traceLen)
	for i := range constant {
		constant[i] = 1.0
	}
	batch := [][]float64{fx.traces[0], constant}
	resp, data := postJSON(t, url+"/v1/disassemble/demo", jsonBody(batch))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body:\n%s", resp.StatusCode, data)
	}
	var apiErr apiError
	if err := json.Unmarshal(data, &apiErr); err != nil {
		t.Fatalf("error body is not a single JSON object: %v\n%s", err, data)
	}
	if apiErr.Error == "" || !strings.Contains(apiErr.Error, "decode failed") {
		t.Fatalf("unexpected error body: %q", apiErr.Error)
	}
	if bytes.Contains(data, []byte(`"decoded"`)) {
		t.Fatalf("error response carries partial successes:\n%s", data)
	}
}

// PublishMetrics exports per-template load state: 1 loaded, 0 lazy, -1
// failed.
func TestRegistryPublishMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)

	r, dir := newTestRegistry(t, RegistryConfig{})
	writeTemplate(t, dir, "corrupt", []byte("not a template"))
	writeTemplate(t, dir, "lazy", fx.tpl)
	if err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("demo"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get("corrupt"); err == nil {
		t.Fatal("corrupt template loaded")
	}
	r.PublishMetrics()

	g := reg.Snapshot().LabeledGauges["scdisd.template.loaded"]
	if g[`template="demo"`] != 1 {
		t.Fatalf("demo loaded gauge = %v", g[`template="demo"`])
	}
	if g[`template="corrupt"`] != -1 {
		t.Fatalf("corrupt loaded gauge = %v", g[`template="corrupt"`])
	}
	if g[`template="lazy"`] != 0 {
		t.Fatalf("lazy loaded gauge = %v", g[`template="lazy"`])
	}
}
