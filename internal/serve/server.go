package serve

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// Config tunes the HTTP front end.
type Config struct {
	// MaxInFlight caps concurrently decoded batches; <1 defaults to 2. Each
	// batch already fans out over the parallel worker pool, so a small number
	// of in-flight batches saturates the CPUs — more just grows the heap.
	MaxInFlight int
	// MaxQueue is how many batches may wait for a decode slot before the
	// server starts shedding with 429; <0 defaults to 8.
	MaxQueue int
	// RetryAfter is the hint sent with 429 responses; <=0 defaults to 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies; <=0 defaults to 256 MiB.
	MaxBodyBytes int64
	// Logger receives request-path warnings; nil uses slog.Default().
	Logger *slog.Logger
	// AccessLog, when non-nil, receives one structured JSON line per request
	// (id, route, template, status, sizes, timings). Nil disables access
	// logging; metrics are recorded either way.
	AccessLog io.Writer
	// TraceExporter, when non-nil, receives tail-sampled request traces as
	// JSONL. The caller owns its lifecycle (Close after the server drains).
	// Nil disables export; the debug ring still works.
	TraceExporter *obs.TraceExporter
	// TraceSampleRate is the probability of keeping a healthy request's
	// trace, in [0, 1]. Error, shed (429) and slow-percentile traces are
	// always kept regardless of the rate.
	TraceSampleRate float64
	// TraceSampler overrides the tail sampler built from TraceSampleRate —
	// tests inject one with a controlled latency histogram. Nil builds the
	// default.
	TraceSampler *obs.TailSampler
	// DebugRequests sizes the /debug/requests ring of recent sampled
	// requests: 0 defaults to 128, negative disables the ring.
	DebugRequests int
}

// Server is the HTTP front end over a template Registry: decode requests,
// registry introspection, health, metrics and admin reload. Build with
// NewServer, mount via Handler.
type Server struct {
	reg      *Registry
	adm      *parallel.Admission
	cfg      Config
	log      *slog.Logger
	access   *slog.Logger // nil when access logging is disabled
	mux      *http.ServeMux
	http     *http.Server
	sampler  *obs.TailSampler   // tail-sampling policy; never nil
	exporter *obs.TraceExporter // nil when trace export is disabled
	ring     *requestRing       // nil when the debug ring is disabled
}

// NewServer wires a server around reg. The admission gate is created here:
// one gate for the whole server, shared by every template, because the
// resource it protects (the worker pool and the heap) is process-wide.
func NewServer(reg *Registry, cfg Config) *Server {
	if cfg.MaxInFlight < 1 {
		cfg.MaxInFlight = 2
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = 8
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 256 << 20
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	ringSize := cfg.DebugRequests
	if ringSize == 0 {
		ringSize = 128
	}
	s := &Server{
		reg:      reg,
		adm:      parallel.NewAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		cfg:      cfg,
		log:      cfg.Logger,
		mux:      http.NewServeMux(),
		sampler:  cfg.TraceSampler,
		exporter: cfg.TraceExporter,
		ring:     newRequestRing(ringSize),
	}
	if s.sampler == nil {
		// The sampler's slow rule reads a private live latency histogram fed
		// by decode requests (middleware), not a registry instrument — the
		// registry handle can be swapped by SetDefault mid-flight.
		s.sampler = obs.NewTailSampler(cfg.TraceSampleRate, obs.NewHistogram(obs.DurationBuckets()))
	}
	if cfg.AccessLog != nil {
		s.access = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	// Every route goes through instrument(): labeled request metrics, request
	// ID, access log. The route label is the pattern name, never the raw path.
	s.mux.HandleFunc("POST /v1/disassemble/{template}", s.instrument("disassemble", s.handleDisassemble))
	s.mux.HandleFunc("GET /v1/templates", s.instrument("templates", s.handleTemplates))
	s.mux.HandleFunc("GET /livez", s.instrument("livez", s.handleLivez))
	s.mux.HandleFunc("GET /readyz", s.instrument("readyz", s.handleReadyz))
	// /healthz predates the liveness/readiness split; it stays as a readiness
	// alias so existing probes keep their semantics (load balancers must stop
	// sending traffic when the server cannot answer anything but 503s).
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleReadyz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /metrics.json", s.instrument("metrics.json", s.handleMetricsJSON))
	s.mux.HandleFunc("POST /admin/reload", s.instrument("reload", s.handleReload))
	s.mux.HandleFunc("GET /debug/requests", s.instrument("debug.requests", s.handleDebugRequests))
	s.mux.HandleFunc("GET /debug/buildinfo", s.instrument("debug.buildinfo", s.handleDebugBuildInfo))
	// Built here, not in Serve, so Shutdown from another goroutine never
	// races the assignment.
	s.http = &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the route tree, for mounting under an http.Server or a
// test server.
func (s *Server) Handler() http.Handler { return s.mux }

// sampleLatency returns the live latency histogram the tail sampler's slow
// rule reads; the middleware feeds it with decode-request durations. May be
// nil (Observe on a nil histogram is a no-op).
func (s *Server) sampleLatency() *obs.Histogram {
	if s.sampler == nil {
		return nil
	}
	return s.sampler.Latency
}

// ListenAndServe serves on addr until Shutdown. Returns http.ErrServerClosed
// after a clean shutdown, like the underlying http.Server.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve serves on an existing listener until Shutdown — the ":0" path for
// tests and supervisors that pick the port themselves.
func (s *Server) Serve(l net.Listener) error {
	return s.http.Serve(l)
}

// Shutdown drains the server: the listener closes immediately, in-flight
// requests run to completion (bounded by ctx), then Shutdown returns. New
// decode work is not accepted during the drain because the listener is gone.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.http.Shutdown(ctx)
}

// apiError is the uniform JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	// Once any handler has started a response body, an error can no longer be
	// expressed in-band: appending error JSON to a partial success would hand
	// the client a 200 with a corrupt body that parses as neither. Abort the
	// connection instead — the client sees a transport error, which is honest.
	if sw, ok := w.(*statusWriter); ok && sw.wrote {
		s.log.Error("error after response started; aborting connection",
			"status", status, "error", msg)
		panic(http.ErrAbortHandler)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(apiError{Error: msg})
}

// DecodedInstr is one decoded instruction of a response, with its
// per-decision confidence record.
type DecodedInstr struct {
	Index      int     `json:"index"`
	Text       string  `json:"text"`
	Confidence float64 `json:"confidence"`
	// Levels is the per-hierarchy-level breakdown (group, instr, rd, rr).
	Levels []obs.DecisionLevel `json:"levels,omitempty"`
}

// DisassembleResponse is the body of a successful decode.
type DisassembleResponse struct {
	Template string         `json:"template"`
	Count    int            `json:"count"`
	Sparse   bool           `json:"sparse"`
	Decoded  []DecodedInstr `json:"decoded"`
	// Drift is the template's covariate-shift state after this batch, when
	// the template carries a drift baseline.
	Drift *obs.DriftSnapshot `json:"drift,omitempty"`
	// Spans is the request's stage tree, present only with ?trace=1.
	Spans []*obs.SpanNode `json:"spans,omitempty"`
}

// disassembleRequest is the JSON decode-request body.
type disassembleRequest struct {
	Traces [][]float64 `json:"traces"`
}

// handleDisassemble decodes one batch of traces against the named template.
//
// Bodies: JSON {"traces": [[...], ...]} or, with Content-Type
// application/octet-stream, a packed little-endian frame — uint32 count,
// uint32 traceLen, then count*traceLen float64 samples — which skips JSON
// float formatting for large batches.
func (s *Server) handleDisassemble(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("template")
	tpl, err := s.reg.Get(name)
	if err != nil {
		if errors.Is(err, ErrUnknownTemplate) {
			s.writeError(w, http.StatusNotFound, "unknown template %q", name)
			return
		}
		// The file exists but cannot be served (corrupt, wrong version...):
		// the template is unavailable, not the request malformed.
		s.writeError(w, http.StatusServiceUnavailable, "template %q unavailable: %v", name, err)
		return
	}

	// Admission before the body is touched: the gate exists to keep the heap
	// flat under a burst, and a body can be up to MaxBodyBytes — parsing
	// outside the gate would let an unbounded number of parsed batches pile
	// up waiting for decode slots. The trade is that a malformed body holds a
	// slot for the (brief) parse; under overload it is shed unread with 429.
	// The request context bounds the queue wait, so a client that gives up
	// frees its queue slot immediately.
	admStart := time.Now()
	release, err := s.adm.Acquire(r.Context())
	if st := statsFrom(r.Context()); st != nil {
		st.admWaitSecs = time.Since(admStart).Seconds()
		st.sawAdmission = true
	}
	if err != nil {
		if errors.Is(err, parallel.ErrOverloaded) {
			w.Header().Set("Retry-After", strconv.Itoa(int(s.cfg.RetryAfter.Seconds()+0.5)))
			s.writeError(w, http.StatusTooManyRequests, "server overloaded: %d decoding, %d queued",
				s.adm.MaxInFlight(), s.adm.MaxQueue())
			return
		}
		s.writeError(w, http.StatusServiceUnavailable, "canceled while queued: %v", err)
		return
	}
	defer release()

	ctx := r.Context()
	root := obs.ContextSpan(ctx)

	// Materialize inside the admission gate: a v4 template's first decode
	// faults its matrix sections in here, and section memory is exactly the
	// kind of burst the gate exists to bound. Gob templates materialized at
	// load; for them this returns immediately.
	loadSpan := root.FineChild("serve.template.load")
	d, err := tpl.disassembler()
	loadSpan.End()
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "template %q unavailable: %v", name, err)
		return
	}

	decodeBodySpan := root.FineChild("serve.decode.body")
	traces, err := readTraces(r, s.cfg.MaxBodyBytes, tpl.traceLen)
	decodeBodySpan.SetAttr("traces", float64(len(traces)))
	decodeBodySpan.End()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	decodeStart := time.Now()
	decs, err := d.DisassembleScoredCtx(ctx, traces)
	if st := statsFrom(r.Context()); st != nil {
		st.decodeSecs = time.Since(decodeStart).Seconds()
		st.traces = len(traces)
	}
	if err != nil {
		if ctx.Err() != nil {
			// Client went away or the server is draining; nobody is reading.
			s.writeError(w, http.StatusServiceUnavailable, "decode canceled: %v", ctx.Err())
			return
		}
		s.writeError(w, http.StatusInternalServerError, "decode failed after %d instructions: %v", len(decs), err)
		return
	}

	resp := DisassembleResponse{
		Template: name,
		Count:    len(decs),
		Sparse:   tpl.sparse,
		Decoded:  make([]DecodedInstr, len(decs)),
	}
	for i, dec := range decs {
		resp.Decoded[i] = DecodedInstr{
			Index:      i,
			Text:       dec.Decoded.String(),
			Confidence: dec.Confidence,
			Levels:     dec.Levels,
		}
	}
	if tpl.drift != nil {
		snap := tpl.drift.Snapshot()
		resp.Drift = &snap
		// Refresh the scrapeable drift gauges with every batch, so /metrics
		// reflects the state this response reported, not the last ticker pass.
		m := srvMet()
		m.driftState.With(name).Set(driftStateValue(snap.State))
		m.driftScore.With(name).Set(snap.Score)
	}
	if r.URL.Query().Get("trace") == "1" {
		// The in-band span tree shows the stages recorded so far; the root
		// middleware span is still open (it ends after this body is written)
		// so handler-stage spans render at the top level.
		resp.Spans = obs.TracerFrom(ctx).Tree()
	}
	// Marshal before writing: a marshal failure mid-stream would leave the
	// client a partial 200 no error can follow (writeError refuses to append
	// one). Buffering makes encode errors a clean 500 instead.
	body, err := json.Marshal(&resp)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// driftStateValue maps a drift state name to its gauge encoding (the
// DriftState enum values: 0 ok, 1 warn, 2 critical).
func driftStateValue(state string) float64 {
	switch state {
	case "warn":
		return 1
	case "critical":
		return 2
	default:
		return 0
	}
}

// readTraces parses the request body into a trace batch, validating every
// trace against the template's expected length up front so a malformed batch
// is rejected before any decode work starts.
func readTraces(r *http.Request, maxBytes int64, traceLen int) ([][]float64, error) {
	body := http.MaxBytesReader(nil, r.Body, maxBytes)
	if r.Header.Get("Content-Type") == "application/octet-stream" {
		return readBinaryTraces(body, maxBytes, traceLen)
	}
	var req disassembleRequest
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("invalid JSON body: %w", err)
	}
	if len(req.Traces) == 0 {
		return nil, errors.New("empty batch: provide at least one trace")
	}
	for i, tr := range req.Traces {
		if len(tr) != traceLen {
			return nil, fmt.Errorf("trace %d has %d samples, template expects %d", i, len(tr), traceLen)
		}
	}
	return req.Traces, nil
}

// readBinaryTraces parses the packed little-endian frame: uint32 count,
// uint32 traceLen, then count*traceLen float64 samples.
func readBinaryTraces(body io.Reader, maxBytes int64, traceLen int) ([][]float64, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(body, hdr[:]); err != nil {
		return nil, fmt.Errorf("binary body: reading header: %w", err)
	}
	count := binary.LittleEndian.Uint32(hdr[0:4])
	n := binary.LittleEndian.Uint32(hdr[4:8])
	if count == 0 {
		return nil, errors.New("empty batch: provide at least one trace")
	}
	if int(n) != traceLen || n == 0 {
		return nil, fmt.Errorf("binary header declares %d samples per trace, template expects %d", n, traceLen)
	}
	// The header is client-supplied: check the declared batch fits the body
	// bound before allocating anything sized by it, so a tiny request cannot
	// declare a multi-gigabyte batch and OOM the server. Division (not
	// count*n*8 <= maxBytes) keeps the comparison overflow-free.
	if perTrace := 8 * uint64(n); uint64(maxBytes) < 8 || uint64(count) > (uint64(maxBytes)-8)/perTrace {
		return nil, fmt.Errorf("binary header declares %d traces of %d samples, exceeding the %d-byte body limit", count, n, maxBytes)
	}
	traces := make([][]float64, count)
	buf := make([]byte, 8*int(n))
	for i := range traces {
		if _, err := io.ReadFull(body, buf); err != nil {
			return nil, fmt.Errorf("binary body: trace %d truncated: %w", i, err)
		}
		tr := make([]float64, n)
		for j := range tr {
			tr[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*j:]))
		}
		traces[i] = tr
	}
	// Trailing bytes mean the header lied about the batch shape.
	if extra, _ := io.Copy(io.Discard, io.LimitReader(body, 1)); extra > 0 {
		return nil, errors.New("binary body: trailing bytes after declared batch")
	}
	return traces, nil
}

// handleTemplates reports every registered template's status, including each
// loaded template's drift state — the per-template drift endpoint.
func (s *Server) handleTemplates(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Templates []TemplateStatus `json:"templates"`
	}{s.reg.Statuses()})
}

// handleLivez is the liveness probe: 200 whenever the process can run a
// handler at all. Liveness deliberately knows nothing about templates or
// load — an orchestrator restarts on liveness failure, and restarting does
// not fix a bad template directory or a saturated gate.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		OK bool `json:"ok"`
	}{true})
}

// handleReadyz is the readiness probe (also served at /healthz for
// compatibility): 200 while at least one registered template could plausibly
// serve AND the admission gate would still admit a request. 503 for an empty
// registry, one where every registered file has already failed to load, or a
// saturated gate — readiness must not stay green when the server can answer
// nothing but 503s and 429s. Entries never requested yet (lazy, no load
// attempted) count as plausibly healthy.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	sts := s.reg.Statuses()
	failed := 0
	for _, st := range sts {
		if st.Error != "" {
			failed++
		}
	}
	saturated := s.adm.Saturated()
	status := http.StatusOK
	if len(sts) == 0 || failed == len(sts) || saturated {
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		OK        bool `json:"ok"`
		Templates int  `json:"templates"`
		Failed    int  `json:"failed"`
		Saturated bool `json:"saturated"`
		InFlight  int  `json:"in_flight"`
		Queued    int  `json:"queued"`
	}{status == http.StatusOK, len(sts), failed, saturated, s.adm.InFlight(), s.adm.Queued()})
}

// handleMetrics renders the process obs registry in Prometheus exposition
// format. The serving instruments (admission gauges, spans dropped, sparse
// fallbacks, decision counters) all live there via the OnDefault hooks.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.Default()
	if reg == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no metrics registry installed")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	reg.WritePrometheus(w)
}

// handleMetricsJSON is the same snapshot as /metrics in JSON.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, r *http.Request) {
	reg := obs.Default()
	if reg == nil {
		s.writeError(w, http.StatusServiceUnavailable, "no metrics registry installed")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	reg.WriteJSON(w)
}

// handleReload rescans the template directory — the admin twin of SIGHUP.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if err := s.reg.Reload(); err != nil {
		s.writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	s.handleTemplates(w, r)
}
