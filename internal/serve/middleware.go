package serve

// HTTP request telemetry: every route is wrapped in instrument(), which
// assigns a request ID, counts the request into the labeled serving metrics
// (route/template/status), times it, sizes both directions, and emits one
// structured JSON access-log line. The handler contributes request-scoped
// detail (traces decoded, admission wait, decode duration) through the
// reqStats carried in the context.

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// srvMetrics holds the serving instrument handles, swapped atomically by the
// OnDefault hook like every instrumented package.
type srvMetrics struct {
	requests   *obs.CounterVec   // scdisd.http.requests.total{route,template,code}
	latency    *obs.HistogramVec // scdisd.http.request.seconds{route,template}
	reqBytes   *obs.HistogramVec // scdisd.http.request.bytes{route}
	respBytes  *obs.HistogramVec // scdisd.http.response.bytes{route}
	admWait    *obs.HistogramVec // scdisd.http.admission.wait.seconds{template}
	inflight   *obs.Gauge        // scdisd.http.inflight — requests currently in a handler
	driftState *obs.GaugeVec     // scdisd.template.drift.state{template} (0 ok, 1 warn, 2 critical)
	driftScore *obs.GaugeVec     // scdisd.template.drift.score{template}
}

var srvMetPtr atomic.Pointer[srvMetrics]

func srvMet() *srvMetrics {
	if m := srvMetPtr.Load(); m != nil {
		return m
	}
	return &srvMetrics{}
}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		srvMetPtr.Store(&srvMetrics{
			requests:   r.CounterVec("scdisd.http.requests.total", "route", "template", "code"),
			latency:    r.HistogramVec("scdisd.http.request.seconds", obs.DurationBuckets(), "route", "template"),
			reqBytes:   r.HistogramVec("scdisd.http.request.bytes", obs.ByteBuckets(), "route"),
			respBytes:  r.HistogramVec("scdisd.http.response.bytes", obs.ByteBuckets(), "route"),
			admWait:    r.HistogramVec("scdisd.http.admission.wait.seconds", obs.DurationBuckets(), "template"),
			inflight:   r.Gauge("scdisd.http.inflight"),
			driftState: r.GaugeVec("scdisd.template.drift.state", "template"),
			driftScore: r.GaugeVec("scdisd.template.drift.score", "template"),
		})
	})
}

// Request IDs are a per-process random nonce plus a sequence number — unique
// across restarts without coordination, cheap to mint, and greppable from an
// access-log line back to a client's X-Request-Id header.
var (
	reqIDNonce = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "00000000"
		}
		return hex.EncodeToString(b[:])
	}()
	reqIDSeq atomic.Uint64
)

func nextRequestID() string {
	return fmt.Sprintf("%s-%06d", reqIDNonce, reqIDSeq.Add(1))
}

// maxRequestIDLen bounds an honored client request ID — long enough for a
// UUID plus prefix, short enough that a hostile header cannot bloat logs.
const maxRequestIDLen = 64

// requestID returns the ID for this request and its source: a client-supplied
// X-Request-Id is honored verbatim when it is 1..maxRequestIDLen bytes of
// printable non-space ASCII — anything else (empty, over-long, control bytes,
// non-ASCII) falls back to a generated ID so logs stay single-line and
// grep-safe. Over-long IDs are rejected rather than truncated: a truncated
// echo would no longer match the ID the client logged, and two distinct long
// IDs could silently collide in the access log.
func requestID(r *http.Request) (id, source string) {
	c := r.Header.Get("X-Request-Id")
	if c != "" && len(c) <= maxRequestIDLen && validRequestID(c) {
		return c, "client"
	}
	return nextRequestID(), "generated"
}

func validRequestID(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] <= ' ' || s[i] > '~' {
			return false
		}
	}
	return true
}

// reqStats is the request-scoped record the handler fills in for the
// middleware to log and label: which template was addressed, how long
// admission and decode took, how many traces were decoded.
type reqStats struct {
	template     string
	traces       int
	admWaitSecs  float64
	decodeSecs   float64
	sawAdmission bool
}

type reqStatsKey struct{}

func withReqStats(ctx context.Context, st *reqStats) context.Context {
	return context.WithValue(ctx, reqStatsKey{}, st)
}

func statsFrom(ctx context.Context) *reqStats {
	st, _ := ctx.Value(reqStatsKey{}).(*reqStats)
	return st
}

// statusWriter records the status code and body bytes of a response, and —
// critically for writeError's append-after-partial-success guard — whether
// the header has already gone out.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	if !w.wrote {
		w.status = status
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += int64(n)
	return n, err
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// countingReader counts request-body bytes actually read by the handler.
type countingReader struct {
	r io.ReadCloser
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

func (c *countingReader) Close() error { return c.r.Close() }

// traceMaxSpans caps one request's retained spans. A 512-span tree is
// already far past human-readable; the cap exists so a giant batch cannot
// hold tens of thousands of span structs per in-flight request. Exported
// traces over the cap carry the truncated marker instead of silently
// missing children.
const traceMaxSpans = 512

// instrument wraps a route handler with request telemetry, per-request
// tracing and access logging. route is the stable low-cardinality label for
// the route (the pattern, not the raw path — raw paths would blow the label
// budget).
//
// Tracing: every request gets its own fine-grained Tracer carried in the
// context — W3C trace identity comes from an incoming traceparent header
// when present (and its sampled flag forces the tail sampler's keep), a
// fresh random trace ID otherwise; the response echoes a traceparent naming
// our root span so callers can stitch trees. The keep/drop decision is
// tail-based: it runs in the deferred recorder when status and duration are
// known, and a kept trace goes to the debug ring and the async exporter —
// never blocking the response path.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := srvMet()
		id, idSource := requestID(r)
		w.Header().Set("X-Request-Id", id)

		// Per-request tracer: trace identity first, so the echoed traceparent
		// (headers must precede the body) can name the root span.
		tracer := obs.NewTracer()
		tracer.Fine = true
		tracer.MaxSpans = traceMaxSpans
		forced := r.URL.Query().Get("trace") == "1"
		traceID, remoteParent := obs.TraceID{}, obs.SpanID{}
		if tid, pid, sampled, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			traceID, remoteParent = tid, pid
			forced = forced || sampled
		}
		if traceID.IsZero() {
			traceID = obs.NewTraceID()
		}
		tracer.SetTraceContext(traceID, remoteParent)

		st := &reqStats{template: r.PathValue("template")}
		if st.template == "" {
			st.template = "-"
		}
		sw := &statusWriter{ResponseWriter: w}
		cr := &countingReader{r: r.Body}
		r.Body = cr
		ctx := withReqStats(obs.WithTracer(r.Context(), tracer), st)
		ctx, root := obs.Span(ctx, "serve.request")
		w.Header().Set("traceparent", obs.FormatTraceparent(traceID, root.ExportID(), true))
		r = r.WithContext(ctx)

		m.inflight.Add(1)
		start := time.Now()
		// The deferred recorder runs on panics too (including the deliberate
		// http.ErrAbortHandler from writeError's partial-response guard), so
		// even an aborted request leaves a metric sample and a log line.
		defer func() {
			rec := recover()
			elapsed := time.Since(start)
			status := sw.status
			if !sw.wrote {
				status = http.StatusOK // implicit 200 on a bodyless return
				if rec != nil {
					status = http.StatusInternalServerError
				}
			}
			code := strconv.Itoa(status)
			traceHex := traceID.String()

			root.SetAttr("status", float64(status))
			root.End()
			// Tail sampling: the slow rule reads the live decode-latency
			// histogram, which only decode requests feed — health probes and
			// metric scrapes would otherwise drag the quantile to microseconds
			// and mark every decode "slow". The decision runs before the
			// metric observations so the latency exemplar can name only kept
			// traces: a dropped trace is exported nowhere and absent from the
			// debug ring, so an exemplar pointing at it would dead-end.
			sampleDur := elapsed
			if route == "disassemble" {
				s.sampleLatency().Observe(elapsed.Seconds())
			} else {
				sampleDur = 0
			}
			keep, reason := s.sampler.Decide(status, sampleDur, forced)

			m.requests.With(route, st.template, code).Inc()
			exemplarID := ""
			if keep {
				exemplarID = traceHex
			}
			m.latency.With(route, st.template).ObserveWithExemplar(elapsed.Seconds(), exemplarID)
			m.reqBytes.With(route).Observe(float64(cr.n))
			m.respBytes.With(route).Observe(float64(sw.bytes))
			if st.sawAdmission {
				m.admWait.With(st.template).Observe(st.admWaitSecs)
			}
			m.inflight.Add(-1)

			if keep {
				tr := tracer.Export()
				tr.Route, tr.Template, tr.Status = route, st.template, status
				tr.RequestID, tr.Reason = id, reason
				exported := s.exporter.Export(tr)
				s.ring.push(requestRecord{
					Time:      start.UTC(),
					TraceID:   traceHex,
					RequestID: id,
					Route:     route,
					Template:  st.template,
					Status:    status,
					DurMS:     float64(elapsed) / float64(time.Millisecond),
					Reason:    reason,
					Spans:     len(tr.Spans),
					Truncated: tr.Truncated,
					Exported:  exported,
				})
			}
			if s.access != nil {
				attrs := []slog.Attr{
					slog.String("id", id),
					slog.String("id_source", idSource),
					slog.String("trace", traceHex),
					slog.String("route", route),
					slog.String("method", r.Method),
					slog.String("path", r.URL.Path),
					slog.String("template", st.template),
					slog.Int("status", status),
					slog.Int64("bytes_in", cr.n),
					slog.Int64("bytes_out", sw.bytes),
					slog.Float64("duration_ms", float64(elapsed)/float64(time.Millisecond)),
					slog.String("remote", r.RemoteAddr),
				}
				if st.traces > 0 {
					attrs = append(attrs, slog.Int("traces", st.traces))
				}
				if st.sawAdmission {
					attrs = append(attrs, slog.Float64("admission_wait_ms", st.admWaitSecs*1e3))
				}
				if st.decodeSecs > 0 {
					attrs = append(attrs, slog.Float64("decode_ms", st.decodeSecs*1e3))
				}
				if keep {
					attrs = append(attrs, slog.String("sampled", reason))
				}
				if rec != nil {
					attrs = append(attrs, slog.Bool("aborted", true))
				}
				s.access.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
			}
			if rec != nil {
				panic(rec)
			}
		}()
		h(sw, r)
	}
}
