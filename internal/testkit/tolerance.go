package testkit

import (
	"math"
)

// TB is the subset of *testing.T the assertion helpers need. Taking the
// interface (instead of *testing.T) keeps testkit importable from fuzz
// targets and benchmarks too.
type TB interface {
	Helper()
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
	Logf(format string, args ...any)
}

// ULPDiff returns the distance between a and b in units of last place —
// how many representable float64 values lie between them. NaN or Inf on
// either side yields MaxUint64 unless the values are identical.
func ULPDiff(a, b float64) uint64 {
	if a == b {
		return 0
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
		return math.MaxUint64
	}
	// Map the float ordering onto an integer ordering (lexicographic trick:
	// negative floats are flipped so the mapping is monotone).
	ia := int64(math.Float64bits(a))
	if ia < 0 {
		ia = math.MinInt64 - ia
	}
	ib := int64(math.Float64bits(b))
	if ib < 0 {
		ib = math.MinInt64 - ib
	}
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return uint64(d)
}

// Close reports whether got is within rtol·|want| + atol of want. NaNs are
// never close to anything (including NaN), matching the pipeline's "no NaN
// may survive" posture.
func Close(got, want, rtol, atol float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	if got == want { // covers equal infinities and exact zeros
		return true
	}
	return math.Abs(got-want) <= rtol*math.Abs(want)+atol
}

// InDelta fails the test when |got−want| > tol (an absolute comparison; use
// CloseTo for relative). The message names what was compared.
func InDelta(t TB, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) || math.IsNaN(want) || math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (±%g, diff %g, %d ulp)",
			what, got, want, tol, got-want, ULPDiff(got, want))
	}
}

// CloseTo fails the test when got is not within rtol·|want|+DefaultAtol of
// want.
func CloseTo(t TB, got, want, rtol float64, what string) {
	t.Helper()
	if !Close(got, want, rtol, DefaultAtol) {
		t.Fatalf("%s = %g, want %g (rtol %g, diff %g, %d ulp)",
			what, got, want, rtol, got-want, ULPDiff(got, want))
	}
}

// AllClose fails the test unless got and want are index-aligned and every
// element is within rtol·|want[i]| + atol. The first offending index is
// reported with its ULP distance.
func AllClose(t TB, got, want []float64, rtol, atol float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if !Close(got[i], want[i], rtol, atol) {
			t.Fatalf("%s[%d] = %g, want %g (rtol %g, atol %g, diff %g, %d ulp)",
				what, i, got[i], want[i], rtol, atol, got[i]-want[i], ULPDiff(got[i], want[i]))
		}
	}
}

// AllClose2D is AllClose over a matrix (slice of equal-length rows).
func AllClose2D(t TB, got, want [][]float64, rtol, atol float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d has %d cols, want %d", what, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if !Close(got[i][j], want[i][j], rtol, atol) {
				t.Fatalf("%s[%d][%d] = %g, want %g (rtol %g, atol %g, diff %g, %d ulp)",
					what, i, j, got[i][j], want[i][j], rtol, atol,
					got[i][j]-want[i][j], ULPDiff(got[i][j], want[i][j]))
			}
		}
	}
}

// ExactEqual fails the test unless got and want agree bitwise — the
// assertion for paths documented to be deterministic regardless of worker
// count (serial vs parallel extraction, cancelled-then-retried runs).
func ExactEqual(t TB, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %v (bits %016x), want %v (bits %016x): paths documented bitwise-identical diverged",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// ExactEqual2D is ExactEqual over row slices.
func ExactEqual2D(t TB, got, want [][]float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		ExactEqual(t, got[i], want[i], what)
	}
}
