package testkit

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
)

// recorder captures Fatalf calls so the harness's own failure paths can be
// asserted without aborting the enclosing test.
type recorder struct {
	fatals []string
}

func (r *recorder) Helper() {}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}
func (r *recorder) Errorf(format string, args ...any) {
	r.fatals = append(r.fatals, fmt.Sprintf(format, args...))
}
func (r *recorder) Logf(string, ...any) {}

func TestULPDiff(t *testing.T) {
	if ULPDiff(1.0, 1.0) != 0 {
		t.Fatal("identical values must be 0 ulp apart")
	}
	if d := ULPDiff(1.0, math.Nextafter(1.0, 2)); d != 1 {
		t.Fatalf("adjacent floats are %d ulp apart, want 1", d)
	}
	// The mapping must be monotone across zero.
	if d := ULPDiff(-math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64); d != 2 {
		t.Fatalf("subnormals straddling zero are %d ulp apart, want 2", d)
	}
	if ULPDiff(math.NaN(), 1) != math.MaxUint64 || ULPDiff(math.Inf(1), 1) != math.MaxUint64 {
		t.Fatal("NaN/Inf must be maximally far from finite values")
	}
}

func TestClose(t *testing.T) {
	if !Close(1.0, 1.0, 0, 0) {
		t.Fatal("exact equality must be close at zero tolerance")
	}
	if !Close(math.Inf(1), math.Inf(1), 0, 0) {
		t.Fatal("equal infinities must be close")
	}
	if Close(math.NaN(), math.NaN(), 1, 1) {
		t.Fatal("NaN must never be close, even to NaN")
	}
	if !Close(1.0+1e-9, 1.0, 1e-8, 0) || Close(1.0+1e-7, 1.0, 1e-8, 0) {
		t.Fatal("relative tolerance boundary wrong")
	}
	if !Close(1e-13, 0, 0, 1e-12) || Close(1e-11, 0, 0, 1e-12) {
		t.Fatal("absolute tolerance boundary wrong")
	}
}

func TestAssertionHelpersReportFirstMismatch(t *testing.T) {
	r := &recorder{}
	AllClose(r, []float64{1, 2, 3}, []float64{1, 2.5, 3}, 0, 1e-9, "probe")
	if len(r.fatals) != 1 || !strings.Contains(r.fatals[0], "probe[1]") {
		t.Fatalf("AllClose mismatch report = %q", r.fatals)
	}
	r = &recorder{}
	ExactEqual(r, []float64{1, math.Copysign(0, -1)}, []float64{1, 0}, "zeros")
	if len(r.fatals) != 1 {
		t.Fatalf("ExactEqual must distinguish -0 from +0 bitwise: %q", r.fatals)
	}
	r = &recorder{}
	InDelta(r, 1, 1+1e-6, 1e-9, "x")
	if len(r.fatals) != 1 {
		t.Fatal("InDelta must fail outside tolerance")
	}
}

func TestCheckShrinksToMinimalScale(t *testing.T) {
	// A property that fails whenever the generated size exceeds the floor:
	// shrinking must walk the reported scale down to the smallest still-failing
	// multiplier rather than reporting the full-size counterexample.
	r := &recorder{}
	Check(r, CheckConfig{Runs: 1, Seed: 5}, func(g *G) error {
		if n := g.Size(2, 64); n > 2 {
			return errors.New("too big")
		}
		return nil
	})
	if len(r.fatals) != 1 {
		t.Fatalf("want one failure, got %q", r.fatals)
	}
	// Size(2,64) stays above 2 down to scale 1/32 and hits the floor (passing)
	// at 1/64, so 1/32 is the minimal failing scale the shrinker must find.
	if !strings.Contains(r.fatals[0], "scale=0.03125") {
		t.Fatalf("failure not shrunk to minimal scale: %q", r.fatals[0])
	}
}

func TestCheckConvertsPanics(t *testing.T) {
	r := &recorder{}
	Check(r, CheckConfig{Runs: 1}, func(g *G) error {
		panic("boom")
	})
	if len(r.fatals) != 1 || !strings.Contains(r.fatals[0], "panic: boom") {
		t.Fatalf("panic not converted to failure: %q", r.fatals)
	}
}

func TestCheckPassesCleanProperty(t *testing.T) {
	Check(t, CheckConfig{Runs: 5}, func(g *G) error {
		if got := len(g.Trace(g.Size(4, 32))); got < 4 {
			return errors.New("trace below structural minimum")
		}
		return nil
	})
}

func TestGeneratorInvariants(t *testing.T) {
	g := NewG(3)
	labels := g.Labels(10, 4)
	seen := map[int]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	for c := 0; c < 4; c++ {
		if !seen[c] {
			t.Fatalf("Labels(10,4) missed class %d: %v", c, labels)
		}
	}
	spd := g.SPDMatrix(5)
	if _, ok := NaiveCholesky(spd); !ok {
		t.Fatal("SPDMatrix not positive definite")
	}
	traces, lab, prog := g.LabeledDataset(3, 2, 4, 16)
	if len(traces) != 24 || len(lab) != 24 || len(prog) != 24 {
		t.Fatalf("LabeledDataset sizes %d/%d/%d, want 24 each", len(traces), len(lab), len(prog))
	}
}

func TestEncodeCorpusFormat(t *testing.T) {
	got, err := EncodeCorpus([]byte{0x01}, "hi", 7, int64(-2), uint16(9), uint64(8))
	if err != nil {
		t.Fatal(err)
	}
	want := "go test fuzz v1\n[]byte(\"\\x01\")\nstring(\"hi\")\nint(7)\nint64(-2)\nuint16(9)\nuint64(8)\n"
	if string(got) != want {
		t.Fatalf("corpus encoding:\n%q\nwant\n%q", got, want)
	}
	if _, err := EncodeCorpus(3.14); err == nil {
		t.Fatal("unsupported argument type must error")
	}
}
