// Package testkit is the repo's correctness harness: shared float
// tolerances, small obviously-correct reference implementations
// (differential oracles) of the numeric kernels, and a seeded
// property-based generator library with shrinking.
//
// The package deliberately imports nothing outside the standard library, so
// in-package tests of any internal package can use it without import cycles.
// Oracles operate on plain slices; the tests adapt package types at the call
// site. Every oracle is written for clarity over speed — direct convolution,
// textbook formulas, O(n²) scans — because its only job is to be obviously
// right at small sizes.
//
// Documented tolerances (see DESIGN.md §10 for the rationale table):
//
//   - CWTTol: FFT-convolution CWT vs direct convolution. The padded FFT does
//     O(m log m) rounding steps versus the oracle's O(k); 1e-9 relative with
//     a 1e-12 absolute floor covers 315-sample traces with 50 scales at
//     >100× margin.
//   - KLTol: closed-form Gaussian KL vs numerical quadrature; limited by the
//     integration step, not the closed form. 1e-6 relative.
//   - LinalgTol: Cholesky/solve/covariance identities; condition numbers in
//     the tests are kept below ~1e6, so 1e-8 relative holds easily.
//   - ExactTol: paths that must agree bitwise (serial vs parallel pipeline
//     results) — zero tolerance, compared with ==.
package testkit

// Shared tolerances for the differential-oracle tests. Keep these in sync
// with the table in DESIGN.md ("Testing & verification strategy").
const (
	// CWTTol is the relative tolerance for FFT-vs-direct CWT comparisons.
	CWTTol = 1e-9
	// KLTol is the relative tolerance for closed-form vs quadrature KL.
	KLTol = 1e-6
	// LinalgTol is the relative tolerance for matrix-identity checks.
	LinalgTol = 1e-8
	// DefaultAtol is the absolute floor used alongside relative tolerances,
	// so comparisons against exact zeros do not demand infinite precision.
	DefaultAtol = 1e-12
)
