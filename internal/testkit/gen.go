package testkit

import (
	"fmt"
	"math"
	"math/rand"
)

// G is one property-check attempt: a seeded random source plus a size
// multiplier in (0, 1]. Generators scale their dimensions by the multiplier,
// which is what the shrinker turns down when a property fails — a failure is
// re-sought at smaller and smaller sizes so the reported counterexample is
// near-minimal.
type G struct {
	Rng   *rand.Rand
	Seed  int64
	scale float64
}

// NewG returns a full-size generator for direct use outside Check — for
// tests that want one deterministic random input rather than a property run.
func NewG(seed int64) *G {
	return &G{Rng: rand.New(rand.NewSource(seed)), Seed: seed, scale: 1}
}

// Size scales max (≥ min ≥ 1 expected) by the current shrink level. The
// result never drops below min, so generators keep their structural
// invariants (e.g. "at least 2 traces") while shrinking.
func (g *G) Size(min, max int) int {
	n := min + int(float64(max-min)*g.scale)
	if n < min {
		n = min
	}
	return n
}

// IntBetween draws uniformly from [lo, hi].
func (g *G) IntBetween(lo, hi int) int {
	return lo + g.Rng.Intn(hi-lo+1)
}

// Float64 draws uniformly from [lo, hi).
func (g *G) Float64(lo, hi float64) float64 {
	return lo + (hi-lo)*g.Rng.Float64()
}

// Norm draws a standard normal value.
func (g *G) Norm() float64 { return g.Rng.NormFloat64() }

// Trace draws an n-sample trace: white noise plus a couple of random
// sinusoids, the rough spectral shape of the power captures.
func (g *G) Trace(n int) []float64 {
	f1 := g.Float64(0.01, 0.45)
	f2 := g.Float64(0.01, 0.45)
	a1, a2 := g.Float64(0.2, 2), g.Float64(0.2, 2)
	p1, p2 := g.Float64(0, 6.28), g.Float64(0, 6.28)
	out := make([]float64, n)
	for i := range out {
		t := float64(i)
		out[i] = a1*math.Sin(2*math.Pi*f1*t+p1) + a2*math.Sin(2*math.Pi*f2*t+p2) + 0.3*g.Norm()
	}
	return out
}

// Traces draws count traces of n samples each.
func (g *G) Traces(count, n int) [][]float64 {
	out := make([][]float64, count)
	for i := range out {
		out[i] = g.Trace(n)
	}
	return out
}

// Scalogram draws a flattened scales×n plane of non-negative magnitudes —
// the shape the feature selector indexes.
func (g *G) Scalogram(scales, n int) []float64 {
	out := make([]float64, scales*n)
	for i := range out {
		v := g.Norm()
		out[i] = v * v
	}
	return out
}

// Matrix draws an r×c matrix of standard normal entries as rows.
func (g *G) Matrix(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		row := make([]float64, c)
		for j := range row {
			row[j] = g.Norm()
		}
		out[i] = row
	}
	return out
}

// SPDMatrix draws a well-conditioned symmetric positive definite n×n matrix
// as B·Bᵀ + n·I with B random normal — eigenvalues are bounded away from
// zero so Cholesky oracles never hit the indefinite branch by accident.
func (g *G) SPDMatrix(n int) [][]float64 {
	B := g.Matrix(n, n)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += B[i][k] * B[j][k]
			}
			out[i][j] = s
			out[j][i] = s
		}
		out[i][i] += float64(n)
	}
	return out
}

// Labels draws n labels covering all of 0..nClasses-1 (each class appears at
// least once when n ≥ nClasses, keeping downstream per-class statistics
// estimable).
func (g *G) Labels(n, nClasses int) []int {
	out := make([]int, n)
	for i := range out {
		if i < nClasses {
			out[i] = i
		} else {
			out[i] = g.Rng.Intn(nClasses)
		}
	}
	g.Rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// LabeledDataset draws a trace dataset with labels and program IDs: every
// (class, program) cell gets perCell traces so per-class and per-program
// statistics are always estimable.
func (g *G) LabeledDataset(nClasses, nPrograms, perCell, traceLen int) (traces [][]float64, labels, programs []int) {
	for c := 0; c < nClasses; c++ {
		// A per-class offset separates the classes so selection has signal.
		off := g.Float64(-1, 1)
		for p := 0; p < nPrograms; p++ {
			for i := 0; i < perCell; i++ {
				tr := g.Trace(traceLen)
				for k := range tr {
					tr[k] += off * math.Sin(0.2*float64(k))
				}
				traces = append(traces, tr)
				labels = append(labels, c)
				programs = append(programs, p)
			}
		}
	}
	return traces, labels, programs
}

// CheckConfig tunes a property run.
type CheckConfig struct {
	// Runs is how many seeded attempts to make (default 20).
	Runs int
	// Seed is the base seed; attempt i uses Seed+i (default 1).
	Seed int64
	// ShrinkSteps bounds the shrink search (default 8 halvings).
	ShrinkSteps int
}

// Check runs prop over deterministically seeded generators. prop returns a
// non-nil error to reject the attempt. On failure Check shrinks: the same
// seed is retried with the size multiplier halved while the property still
// fails, and the minimal failing (seed, scale) is reported so the failure
// reproduces with `go test` alone — no flaky randomness, no hidden state.
func Check(t TB, cfg CheckConfig, prop func(g *G) error) {
	t.Helper()
	if cfg.Runs <= 0 {
		cfg.Runs = 20
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.ShrinkSteps <= 0 {
		cfg.ShrinkSteps = 8
	}
	for i := 0; i < cfg.Runs; i++ {
		seed := cfg.Seed + int64(i)
		err := runProp(seed, 1, prop)
		if err == nil {
			continue
		}
		// Shrink: halve the size multiplier while the failure persists.
		failScale, failErr := 1.0, err
		scale := 0.5
		for step := 0; step < cfg.ShrinkSteps; step++ {
			if e := runProp(seed, scale, prop); e != nil {
				failScale, failErr = scale, e
				scale /= 2
				continue
			}
			break // shrunk too far; the previous failure is minimal
		}
		t.Fatalf("property failed (seed=%d, scale=%g; rerun with these in a G): %v",
			seed, failScale, failErr)
	}
}

// runProp evaluates one attempt, converting a panic into a property error so
// the shrinker can keep working on panicking counterexamples too.
func runProp(seed int64, scale float64, prop func(g *G) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	g := &G{Rng: rand.New(rand.NewSource(seed)), Seed: seed, scale: scale}
	return prop(g)
}
