package testkit

import (
	"fmt"
	"math"
)

// This file holds the differential oracles: small reference implementations
// of the numeric kernels, written the obvious way (direct convolution,
// textbook formulas, dense O(n³) loops). The optimized production paths are
// compared against them over seeded random inputs with the tolerances
// declared in testkit.go.

// DirectCWT computes the magnitude scalogram of x by direct time-domain
// convolution with the analytic Morlet wavelet — the O(n·k) definition the
// FFT path in internal/dsp must reproduce:
//
//	out[j][k] = | Σ_i  x[i] · ψ_{s_j}(k−i) |
//	ψ_s(t)   = π^{−1/4} s^{−1/2} exp(−(t/s)²/2) exp(i ω₀ t/s)
//
// The envelope is truncated at halfWidthSigmas·s samples, matching the
// production kernel's support. scales are taken from the transform under
// test so both paths evaluate the identical scale bank.
func DirectCWT(x []float64, scales []float64, omega0, halfWidthSigmas float64) [][]float64 {
	out := make([][]float64, len(scales))
	for j, s := range scales {
		half := int(math.Ceil(halfWidthSigmas * s))
		norm := math.Pow(math.Pi, -0.25) / math.Sqrt(s)
		row := make([]float64, len(x))
		for k := range x {
			var re, im float64
			for i := k - half; i <= k+half; i++ {
				if i < 0 || i >= len(x) {
					continue
				}
				t := float64(k-i) / s
				env := norm * math.Exp(-0.5*t*t)
				re += x[i] * env * math.Cos(omega0*t)
				im += x[i] * env * math.Sin(omega0*t)
			}
			row[k] = math.Hypot(re, im)
		}
		out[j] = row
	}
	return out
}

// KLGaussianQuadrature evaluates D_KL(P‖Q) = ∫ p(x) ln(p(x)/q(x)) dx for
// univariate Gaussians by Simpson's rule, never using the closed form the
// production code implements. The integrand decays like a Gaussian, so a
// ±12σ window around both means captures it far beyond float precision.
// steps must be even; 1<<14 gives ~1e-10 accuracy on O(1) divergences.
func KLGaussianQuadrature(muP, sigmaP, muQ, sigmaQ float64, steps int) float64 {
	if steps%2 != 0 {
		steps++
	}
	lo := math.Min(muP-12*sigmaP, muQ-12*sigmaQ)
	hi := math.Max(muP+12*sigmaP, muQ+12*sigmaQ)
	h := (hi - lo) / float64(steps)
	logPdf := func(x, mu, sigma float64) float64 {
		d := (x - mu) / sigma
		return -0.5*d*d - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
	}
	f := func(x float64) float64 {
		lp := logPdf(x, muP, sigmaP)
		return math.Exp(lp) * (lp - logPdf(x, muQ, sigmaQ))
	}
	sum := f(lo) + f(hi)
	for i := 1; i < steps; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// BruteKNNPredict classifies x by the plain definition of k-nearest
// neighbors: scan all training rows, pick the k smallest squared Euclidean
// distances by repeated minimum extraction (lowest index wins distance
// ties), majority vote with ties broken toward the lowest class label.
func BruteKNNPredict(X [][]float64, y []int, x []float64, k, nClasses int) int {
	d := make([]float64, len(X))
	for i, row := range X {
		var s float64
		for j := range row {
			diff := row[j] - x[j]
			s += diff * diff
		}
		d[i] = s
	}
	taken := make([]bool, len(X))
	votes := make([]int, nClasses)
	for picked := 0; picked < k; picked++ {
		best := -1
		for i := range d {
			if taken[i] {
				continue
			}
			if best == -1 || d[i] < d[best] {
				best = i
			}
		}
		taken[best] = true
		votes[y[best]]++
	}
	bestClass, bestVotes := 0, votes[0]
	for c := 1; c < nClasses; c++ {
		if votes[c] > bestVotes {
			bestClass, bestVotes = c, votes[c]
		}
	}
	return bestClass
}

// NaiveCovariance computes the unbiased sample covariance of X (rows are
// samples) with the textbook two-pass formula:
// cov[i][j] = Σ_r (X[r][i]−μ_i)(X[r][j]−μ_j) / (n−1).
func NaiveCovariance(X [][]float64) [][]float64 {
	n := len(X)
	p := len(X[0])
	mu := make([]float64, p)
	for _, row := range X {
		for j, v := range row {
			mu[j] += v
		}
	}
	for j := range mu {
		mu[j] /= float64(n)
	}
	cov := make([][]float64, p)
	for i := range cov {
		cov[i] = make([]float64, p)
		for j := 0; j < p; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += (X[r][i] - mu[i]) * (X[r][j] - mu[j])
			}
			cov[i][j] = s / float64(n-1)
		}
	}
	return cov
}

// NaiveCholesky factorizes the symmetric positive definite matrix a into
// its lower-triangular factor with the textbook Cholesky–Banachiewicz
// recurrence, returning ok=false when a pivot is non-positive.
func NaiveCholesky(a [][]float64) (L [][]float64, ok bool) {
	n := len(a)
	L = make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	for j := 0; j < n; j++ {
		var d float64
		for k := 0; k < j; k++ {
			d += L[j][k] * L[j][k]
		}
		d = a[j][j] - d
		if d <= 0 || math.IsNaN(d) {
			return nil, false
		}
		L[j][j] = math.Sqrt(d)
		for i := j + 1; i < n; i++ {
			var s float64
			for k := 0; k < j; k++ {
				s += L[i][k] * L[j][k]
			}
			L[i][j] = (a[i][j] - s) / L[j][j]
		}
	}
	return L, true
}

// MulLLT returns L·Lᵀ — the reconstruction identity a Cholesky factor must
// satisfy.
func MulLLT(L [][]float64) [][]float64 {
	n := len(L)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				s += L[i][k] * L[j][k]
			}
			out[i][j] = s
		}
	}
	return out
}

// SolveGauss solves A·x = b by Gaussian elimination with partial pivoting —
// the reference for triangular-solve paths. It returns an error for a
// numerically singular system.
func SolveGauss(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	// Work on copies: the oracle must not mutate the caller's data.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-300 {
			return nil, fmt.Errorf("testkit: singular system at column %d", col)
		}
		m[col], m[piv] = m[piv], m[col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for c := i + 1; c < n; c++ {
			s -= m[i][c] * x[c]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// GramMatrix returns V·Vᵀ for a row-major matrix V — used to assert
// orthonormality of PCA components (the Gram matrix of orthonormal rows is
// the identity).
func GramMatrix(V [][]float64) [][]float64 {
	k := len(V)
	out := make([][]float64, k)
	for i := range out {
		out[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			var s float64
			for c := range V[i] {
				s += V[i][c] * V[j][c]
			}
			out[i][j] = s
		}
	}
	return out
}

// Identity returns the n×n identity matrix, the comparison target for
// GramMatrix.
func Identity(n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		out[i][i] = 1
	}
	return out
}
