package testkit

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// EncodeCorpus renders one seed-corpus file in the native Go fuzzing format
// ("go test fuzz v1" followed by one Go literal per fuzz argument). Supported
// argument types mirror what the repo's fuzz targets take: []byte, string,
// and the integer kinds.
func EncodeCorpus(args ...any) ([]byte, error) {
	var b strings.Builder
	b.WriteString("go test fuzz v1\n")
	for _, a := range args {
		switch v := a.(type) {
		case []byte:
			fmt.Fprintf(&b, "[]byte(%q)\n", v)
		case string:
			fmt.Fprintf(&b, "string(%q)\n", v)
		case int:
			fmt.Fprintf(&b, "int(%d)\n", v)
		case int64:
			fmt.Fprintf(&b, "int64(%d)\n", v)
		case uint16:
			fmt.Fprintf(&b, "uint16(%d)\n", v)
		case uint64:
			fmt.Fprintf(&b, "uint64(%d)\n", v)
		default:
			return nil, fmt.Errorf("testkit: unsupported corpus argument type %T", a)
		}
	}
	return []byte(b.String()), nil
}

// WriteCorpus writes one seed file into testdata/fuzz/<target>/<name> —
// the directory `go test -fuzz` reads committed seeds from. Packages expose
// an env-guarded regeneration test around this so the checked-in corpora
// stay derivable from code.
func WriteCorpus(t TB, target, name string, args ...any) {
	t.Helper()
	data, err := EncodeCorpus(args...)
	if err != nil {
		t.Fatalf("encoding corpus %s/%s: %v", target, name, err)
	}
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("creating corpus dir %s: %v", dir, err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("writing corpus seed %s: %v", path, err)
	}
	t.Logf("wrote %s", path)
}
