package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/testkit"
)

// fuzzSeeds builds the deterministic seed set shared by the committed corpus
// and FuzzStoreOpen's in-process f.Add calls: a valid tiny v4 file (both
// encodings), truncations at each region boundary, single-byte damage in the
// header and in a section payload, and a hand-crafted directory claiming a
// section past EOF — the cases the format's screens exist for.
func fuzzSeeds(t testing.TB) map[string][]byte {
	valid := writeBytes(t, tinyState(), Options{})
	flip := func(b []byte, i int) []byte {
		out := append([]byte(nil), b...)
		out[i] ^= 0x20
		return out
	}
	ref, err := OpenReaderAt(bytes.NewReader(valid), int64(len(valid)))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	firstPayload := int(ref.PayloadOffset()) + 1
	return map[string][]byte{
		"valid_v4":          valid,
		"valid_quantized":   writeBytes(t, tinyState(), Options{Quantize: true}),
		"empty":             {},
		"bad_magic":         flip(valid, 1),
		"truncated_prelude": valid[:preludeLen/2],
		"truncated_header":  valid[:preludeLen+7],
		"truncated_payload": valid[:len(valid)-5],
		"flipped_header":    flip(valid, preludeLen+9),
		"flipped_section":   flip(valid, firstPayload),
		"section_past_eof": rewriteHeader(t, valid, func(h *fileHeader) {
			h.Sections[0].Offset = int64(len(valid)) * 16
		}),
	}
}

// TestStoreFuzzCorpusCommitted regenerates the committed FuzzStoreOpen seed
// corpus under testdata/fuzz when REGEN_FUZZ_CORPUS is set, and otherwise
// asserts it is present — the corpus stays derivable from code.
func TestStoreFuzzCorpusCommitted(t *testing.T) {
	if os.Getenv("REGEN_FUZZ_CORPUS") != "" {
		for name, b := range fuzzSeeds(t) {
			testkit.WriteCorpus(t, "FuzzStoreOpen", name, b)
		}
		return
	}
	ents, err := os.ReadDir(filepath.Join("testdata", "fuzz", "FuzzStoreOpen"))
	if err != nil || len(ents) == 0 {
		t.Errorf("no committed seed corpus for FuzzStoreOpen (REGEN_FUZZ_CORPUS=1 to create): %v", err)
	}
}

// FuzzStoreOpen drives the whole read path with arbitrary bytes. The
// contract: Open never panics, every rejection wraps ErrFormat (a
// bytes.Reader cannot produce I/O errors, so any error is the file's fault),
// and a file whose header passes the screens either materializes fully or
// fails with ErrFormat — never a partial state, never a crash.
func FuzzStoreOpen(f *testing.F) {
	for _, b := range fuzzSeeds(f) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sf, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			if sf != nil {
				t.Fatal("OpenReaderAt returned a File together with an error")
			}
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("rejection outside ErrFormat: %v", err)
			}
			return
		}
		defer sf.Close()
		// Shape accessors must be safe on anything that opened.
		_ = sf.Quantized()
		_ = sf.Sections()
		if sf.HeaderState() == nil {
			t.Fatal("opened file carries no header state")
		}
		st, err := sf.Template()
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("materialization rejection outside ErrFormat: %v", err)
			}
			return
		}
		if st == nil {
			t.Fatal("Template returned nil, nil")
		}
	})
}
