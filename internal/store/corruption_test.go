package store

import (
	"bytes"
	"errors"
	"testing"
)

// TestCorruptionMatrix flips one byte inside every section of a valid file,
// one section at a time, and pins the containment contract: the error is a
// SectionError naming exactly the damaged section (wrapping ErrFormat), every
// other section still loads bit-perfectly, and the file as a whole can never
// materialize into a classifying template.
func TestCorruptionMatrix(t *testing.T) {
	st := tinyState()
	valid := writeBytes(t, st, Options{})
	want, wantAux := expectedPayloads(t, st)
	ref := openBytes(t, valid)
	payloadOff := ref.PayloadOffset()
	secs := ref.Sections()
	if len(secs) != len(want)+len(wantAux) {
		t.Fatalf("directory holds %d sections, expected %d", len(secs), len(want)+len(wantAux))
	}
	// Pristine on-disk bytes per section, for sibling-intactness checks that
	// work uniformly across matrix and aux sections.
	pristine := make(map[string][]byte, len(secs))
	for _, s := range secs {
		b, err := ref.LoadSectionBytes(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		pristine[s.Name] = b
	}
	for _, target := range secs {
		t.Run(target.Name, func(t *testing.T) {
			b := append([]byte(nil), valid...)
			// Flip one bit in the middle of the target's payload.
			mid := payloadOff + target.Offset + target.byteLen()/2
			b[mid] ^= 0x10
			f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				t.Fatalf("payload corruption must not fail the header open: %v", err)
			}
			defer f.Close()

			// The damaged section reports itself by name, whichever loader
			// asks for it.
			_, err = f.LoadSectionBytes(target.Name)
			var se *SectionError
			if !errors.As(err, &se) || se.Section != target.Name {
				t.Fatalf("corrupted %q: LoadSectionBytes error %v does not name the section", target.Name, err)
			}
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("corrupted %q: error %v does not wrap ErrFormat", target.Name, err)
			}
			if target.Encoding != EncRaw {
				if _, err := f.LoadSection(target.Name); !errors.As(err, &se) || se.Section != target.Name || !errors.Is(err, ErrFormat) {
					t.Fatalf("corrupted %q: LoadSection error %v does not pin the section", target.Name, err)
				}
			}

			// Every other section is untouched and still reads bit-perfectly.
			for _, other := range secs {
				if other.Name == target.Name {
					continue
				}
				got, err := f.LoadSectionBytes(other.Name)
				if err != nil {
					t.Fatalf("corrupting %q broke sibling %q: %v", target.Name, other.Name, err)
				}
				if !bytes.Equal(got, pristine[other.Name]) {
					t.Fatalf("corrupting %q changed sibling %q's payload", target.Name, other.Name)
				}
			}

			// The whole-template materialization fails closed and names the
			// damaged section — no partial-state template can classify.
			_, err = f.Template()
			if !errors.As(err, &se) || se.Section != target.Name || !errors.Is(err, ErrFormat) {
				t.Fatalf("corrupted %q: Template error %v does not pin the section", target.Name, err)
			}
		})
	}
}

// TestCorruptionDetectedUnderQuantization repeats the single-byte flip on a
// quantized file for one section of each encoding-sensitive family — CRCs
// are computed over the on-disk (quantized) bytes, so detection must not
// depend on the encoding.
func TestCorruptionDetectedUnderQuantization(t *testing.T) {
	valid := writeBytes(t, tinyState(), Options{Quantize: true})
	ref := openBytes(t, valid)
	for _, target := range ref.Sections() {
		b := append([]byte(nil), valid...)
		b[ref.PayloadOffset()+target.Offset] ^= 0x01
		f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			t.Fatal(err)
		}
		var se *SectionError
		if _, err := f.LoadSectionBytes(target.Name); !errors.As(err, &se) || se.Section != target.Name {
			t.Fatalf("quantized corruption of %q undetected: %v", target.Name, err)
		}
		f.Close()
	}
}
