// Package store implements the flat, versioned, checksummed template
// container — schema v4 of the template lineage that versions 1–3 carried
// as whole-file gob blobs (internal/core/persist.go).
//
// Layout (all integers little-endian; see DESIGN §12 for the diagram):
//
//	[0:4)    magic "SCT4"
//	[4:8)    uint32 schema version (4)
//	[8:12)   uint32 flags (bit 0: matrix sections quantized to float32)
//	[12:16)  uint32 header length H
//	[16:20)  uint32 CRC-32C of the header bytes
//	[20:20+H) gob-encoded header: the stripped template state (configs,
//	          class tables, per-class vectors — everything genuinely
//	          small) plus the section directory
//	[20+H:)  section payloads, back to back, one CRC-32C each (recorded in
//	          the directory, checked on load)
//
// The header decodes eagerly at Open — cheap, and enough to answer shape
// questions (trace length, sparse capability) and serve /v1/templates. The
// big matrices (PCA bases, QDA Cholesky factors, SVM support vectors, kNN
// training sets, sparse-CWT kernel tables) are section-addressed and
// materialize lazily on the first decode, via mmap on linux with a portable
// ReadAt fallback. The bulky non-matrix structure — selected points,
// per-pair KL tables, z-score moments, kernel cell indices — rides in one
// raw-encoded "<level>/aux" gob section per level (see levelAux): it is
// reflection-heavy to decode, so keeping it out of the header is what makes
// Open cheap. Directory offsets are relative to the payload region start
// because gob encodes integers variable-length: absolute offsets would
// change the header's own length.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/avr"
	"repro/internal/dsp"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/internal/stats"
)

const (
	// Magic is the four-byte file signature ("SCT4": Side-Channel Template,
	// schema 4). A gob template file starts with gob's own type prelude and
	// can never collide with it, so one byte-sniff routes old and new files.
	Magic = "SCT4"
	// Version is the schema this package reads and writes. Versions 1–3 are
	// the gob lineage and are handled by core.Load, not this package.
	Version = 4

	// flagQuantized marks files whose matrix sections are float32-encoded.
	flagQuantized = 1 << 0

	// preludeLen is the fixed-size region before the gob header.
	preludeLen = 20

	// maxDim bounds a single section dimension. Directory entries come from
	// a file of uncontrolled origin; bounding Rows and Cols keeps the
	// Rows*Cols products far from int64 overflow before the real check
	// against the payload region size.
	maxDim = 1 << 30
)

// ErrFormat is wrapped into every failure caused by the template file
// itself — bad magic, unknown version, truncated or corrupted bytes, CRC
// mismatches, directory entries that cannot be valid. Callers distinguish
// "bad file" from I/O errors with errors.Is, mirroring the
// core.ErrTemplateFormat contract for the gob lineage.
var ErrFormat = errors.New("store: invalid template file")

// castagnoli is the CRC-32C table (the polynomial with hardware support on
// both amd64 and arm64; the kernel-table sections alone run to megabytes).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionError reports a failure pinned to one named section, so operators
// see "section g1/clf/svm.3.sv corrupted", not just "bad file". It wraps
// the underlying cause (which wraps ErrFormat when the file is at fault).
type SectionError struct {
	Section string
	Err     error
}

func (e *SectionError) Error() string { return fmt.Sprintf("store: section %q: %v", e.Section, e.Err) }
func (e *SectionError) Unwrap() error { return e.Err }

// Encoding identifies how a section's float64 values are packed on disk.
type Encoding uint8

const (
	// EncFloat64 stores values verbatim: 8 bytes each, bitwise round-trip.
	EncFloat64 Encoding = 0
	// EncFloat32 stores float32(v): 4 bytes each. Decoding yields exactly
	// float64(float32(v)) — a documented relative rounding of at most 2⁻²⁴
	// (half-ULP of float32) per value, gated end-to-end by the e2e accuracy
	// harness.
	EncFloat32 Encoding = 1
	// EncRaw stores an opaque byte blob verbatim (one byte per element,
	// Rows=1). It carries the per-level aux gob (see levelAux) and is never
	// quantized — the blob is integers and exact moments, not matrix data.
	EncRaw Encoding = 2
)

func (e Encoding) valueSize() int64 {
	switch e {
	case EncFloat32:
		return 4
	case EncRaw:
		return 1
	}
	return 8
}

// SectionInfo is one directory entry: where a named payload lives in the
// payload region and how to check and decode it.
type SectionInfo struct {
	Name       string
	Offset     int64 // relative to the payload region start
	Rows, Cols int
	Encoding   Encoding
	CRC        uint32 // CRC-32C of the on-disk (possibly quantized) bytes
}

func (s SectionInfo) elems() int64 { return int64(s.Rows) * int64(s.Cols) }

func (s SectionInfo) byteLen() int64 { return s.elems() * s.Encoding.valueSize() }

// LevelState is one hierarchy level of a template in storable form:
// the pipeline and classifier snapshots (stripped of matrix payloads in the
// header, whole once materialized) plus the optional precomputed sparse-CWT
// kernel table.
type LevelState struct {
	Present bool
	Pipe    *features.PipelineState
	Clf     *ml.ClassifierState
	// Sparse is the persisted per-cell kernel table (nil for levels that
	// cannot take the sparse path). Persisting it trades file bytes for
	// skipping the kernel rebuild at materialization time.
	Sparse *dsp.SparseTable
}

// TemplateState is the full template set in storable form — the exported
// mirror of core's serialized state, defined here (with core converting)
// so the store stays import-cycle-free under core's own use of it.
type TemplateState struct {
	HaveRegs   bool
	Group      LevelState
	Instr      [avr.NumGroups]LevelState
	InstrClass [avr.NumGroups][]avr.Class
	Rd, Rr     LevelState
}

// levelRef pairs a level with its stable key — the prefix of its section
// names ("group/pca", "g3/clf/qda.1.factor", "rd/cwt.re").
type levelRef struct {
	key string
	lvl *LevelState
}

func levels(st *TemplateState) []levelRef {
	refs := make([]levelRef, 0, avr.NumGroups+3)
	refs = append(refs, levelRef{"group", &st.Group})
	for i := range st.Instr {
		refs = append(refs, levelRef{fmt.Sprintf("g%d", i+1), &st.Instr[i]})
	}
	refs = append(refs, levelRef{"rd", &st.Rd}, levelRef{"rr", &st.Rr})
	return refs
}

// fileHeader is the gob-encoded eager region: stripped state + directory.
type fileHeader struct {
	Schema   int
	Sections []SectionInfo
	State    *TemplateState
}

// levelAux is the payload of a "<key>/aux" section: the selection and
// normalization structure that is not a float64 matrix but is far too
// expensive for the eager header — gob spends most of a header decode
// reflecting over these many small records (selected points, per-pair KL
// tables, kernel cell indices). Moving them into one lazily loaded,
// CRC-checked blob per level is what keeps Open proportional to the truly
// small state (configs, class tables, per-class vectors) and the registry
// cold start an order of magnitude under a full gob decode.
type levelAux struct {
	Points  []features.Point
	Pairs   []features.PairFeatures
	PairIdx [][]int
	Z       *stats.ZScoreNormalizer
	PCAMean []float64
	PCAEig  []float64
	// Clf is the stripped classifier snapshot (shapes, labels, per-class
	// vectors — matrices ride in their own sections). It lives here rather
	// than in the header because kNN label sets and class-mean tables grow
	// with the training set; the header keeps only LevelState.Present.
	Clf     *ml.ClassifierState
	Cells   []dsp.Cell
	Lo, Off []int
}

// auxName is the section-name suffix of the per-level aux blob.
const auxName = "aux"
