package store

import (
	"fmt"
	"io"
	"os"
)

// sectionSource abstracts where a file's bytes come from: an mmap'd region
// on linux (zero-copy slicing) or any io.ReaderAt (portable fallback, and
// the path OpenReaderAt uses for in-memory fuzzing).
type sectionSource interface {
	// bytes returns n bytes at off. The returned slice may alias a shared
	// mapping and is only valid until close; callers must not mutate it and
	// must copy anything they keep.
	bytes(off, n int64) ([]byte, error)
	close() error
}

// readerAtSource is the portable fallback: every read allocates and copies.
type readerAtSource struct {
	r      io.ReaderAt
	closer io.Closer // nil when the caller owns the reader's lifetime
}

func (s *readerAtSource) bytes(off, n int64) ([]byte, error) {
	b := make([]byte, n)
	if _, err := s.r.ReadAt(b, off); err != nil {
		return nil, fmt.Errorf("store: reading %d bytes at %d: %w", n, off, err)
	}
	return b, nil
}

func (s *readerAtSource) close() error {
	if s.closer == nil {
		return nil
	}
	return s.closer.Close()
}

// openFileSource opens path as a sectionSource, preferring mmap where the
// platform file provides it (source_linux.go) and falling back to ReadAt.
func openFileSource(path string) (sectionSource, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	size := info.Size()
	if src := mmapSource(f, size); src != nil {
		// The mapping outlives the descriptor; holding the file open too
		// would double the fd footprint of a large registry.
		f.Close()
		return src, size, nil
	}
	return &readerAtSource{r: f, closer: f}, size, nil
}
