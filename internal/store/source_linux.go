//go:build linux

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSrc serves section reads as zero-copy slices of a read-only shared
// mapping. Decoded sections copy out of the mapping (bytes become float64s)
// so nothing aliases it after materialization; the header gob is likewise
// consumed through a copying reader. Munmap happens at close.
type mmapSrc struct {
	data []byte
}

func (s *mmapSrc) bytes(off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(s.data)) {
		return nil, fmt.Errorf("store: read [%d,%d) outside mapping of %d bytes", off, off+n, len(s.data))
	}
	return s.data[off : off+n : off+n], nil
}

func (s *mmapSrc) close() error {
	if s.data == nil {
		return nil
	}
	data := s.data
	s.data = nil
	return syscall.Munmap(data)
}

// mmapSource maps f read-only, returning nil (caller falls back to ReadAt)
// when the file cannot be mapped — empty files, exotic filesystems, or a
// size that does not fit the platform int.
func mmapSource(f *os.File, size int64) sectionSource {
	if size <= 0 || size != int64(int(size)) {
		return nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil
	}
	return &mmapSrc{data: data}
}
