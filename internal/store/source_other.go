//go:build !linux

package store

import "os"

// mmapSource always declines off linux; openFileSource falls back to the
// portable ReadAt source.
func mmapSource(f *os.File, size int64) sectionSource { return nil }
