package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"testing"

	"repro/internal/dsp"
	"repro/internal/features"
	"repro/internal/linalg"
	"repro/internal/ml"
	"repro/internal/stats"
	"repro/internal/testkit"
)

// tinyState builds a hand-sized template state that exercises every section
// family the format defines: a PCA basis per level, one classifier of each
// matrix-bearing family (LDA, QDA, kNN, SVM), and a sparse kernel table.
// The values are chosen non-float32-representable (thirds, sevenths) so the
// quantization property below actually measures rounding.
func tinyState() *TemplateState {
	vals := func(n int, seed float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = (seed + float64(i)) / 3 * (1 + seed/7)
		}
		return out
	}
	mat := func(r, c int, seed float64) *linalg.Matrix {
		return &linalg.Matrix{Rows: r, Cols: c, Data: vals(r*c, seed)}
	}
	rows := func(r, c int, seed float64) [][]float64 {
		out := make([][]float64, r)
		for i := range out {
			out[i] = vals(c, seed+float64(i))
		}
		return out
	}
	pipe := func(seed float64) *features.PipelineState {
		return &features.PipelineState{
			TraceLen: 16,
			Points:   []features.Point{{Scale: 0, Time: 1}, {Scale: 1, Time: 2}},
			Pairs: []features.PairFeatures{{
				A: 0, B: 1,
				Points: []features.Point{{Scale: 0, Time: 1}},
				KL:     vals(1, seed+0.25),
			}},
			PairIdx: [][]int{{0}},
			Z:       &stats.ZScoreNormalizer{Means: vals(3, seed+0.125), Stds: vals(3, seed+0.375)},
			PCA: &features.PCA{
				Mean:       vals(3, seed),
				Components: mat(2, 3, seed+0.5),
				EigVals:    vals(2, seed+0.75),
			},
		}
	}
	st := &TemplateState{HaveRegs: true}
	st.Group = LevelState{
		Present: true,
		Pipe:    pipe(1),
		Clf: &ml.ClassifierState{LDA: &ml.LDAState{
			Means:        rows(2, 2, 2),
			PooledFactor: mat(2, 2, 3),
			Priors:       []float64{0.5, 0.5},
		}},
		Sparse: &dsp.SparseTable{
			N:     16,
			Cells: []dsp.Cell{{Scale: 0, Time: 1}, {Scale: 1, Time: 2}},
			Lo:    []int{0, 1},
			Off:   []int{0, 3, 5},
			Re:    vals(5, 4),
			Im:    vals(5, 5),
		},
	}
	st.Instr[0] = LevelState{
		Present: true,
		Pipe:    pipe(6),
		Clf: &ml.ClassifierState{QDA: &ml.QDAState{
			Means:   rows(2, 2, 7),
			Factors: []*linalg.Matrix{mat(2, 2, 8), mat(2, 2, 9)},
			Priors:  []float64{0.25, 0.75},
		}},
	}
	st.Instr[1] = LevelState{
		Present: true,
		Pipe:    pipe(10),
		Clf: &ml.ClassifierState{KNN: &ml.KNNState{
			K: 1, X: rows(3, 2, 11), Labels: []int{0, 1, 0},
		}},
	}
	st.Rd = LevelState{
		Present: true,
		Pipe:    pipe(12),
		Clf: &ml.ClassifierState{SVM: &ml.SVMState{
			C: 1, Kernel: ml.SVMKernelState{Kind: "linear"},
			Machines: []ml.BinarySVMState{{
				Alphas: vals(2, 13), SVs: rows(2, 2, 14), SVYs: []float64{1, -1}, Bias: 0.25,
			}},
			Pairs: [][2]int{{0, 1}}, Classes: 2, Dim: 2,
		}},
	}
	return st
}

// expectedPayloads enumerates the tiny state's section payloads by name:
// float values for matrix sections, raw gob bytes for the per-level aux
// blobs.
func expectedPayloads(t testing.TB, st *TemplateState) (map[string][]float64, map[string][]byte) {
	t.Helper()
	_, secs, err := collect(st)
	if err != nil {
		t.Fatal(err)
	}
	floats := make(map[string][]float64, len(secs))
	raws := make(map[string][]byte)
	for _, s := range secs {
		if s.raw != nil {
			raws[s.info.Name] = s.raw
		} else {
			floats[s.info.Name] = s.data
		}
	}
	return floats, raws
}

func writeBytes(t testing.TB, st *TemplateState, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, st, opts); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func openBytes(t testing.TB, b []byte) *File {
	t.Helper()
	f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// rewriteHeader decodes a valid file's header, applies mutate, and reassembles
// the file with a recomputed header CRC and the original payload bytes —
// the test path for crafting directories that Write would refuse to emit.
func rewriteHeader(t testing.TB, file []byte, mutate func(h *fileHeader)) []byte {
	t.Helper()
	hlen := int64(binary.LittleEndian.Uint32(file[12:16]))
	var hdr fileHeader
	if err := gob.NewDecoder(bytes.NewReader(file[preludeLen : preludeLen+hlen])).Decode(&hdr); err != nil {
		t.Fatal(err)
	}
	mutate(&hdr)
	var hbuf bytes.Buffer
	if err := gob.NewEncoder(&hbuf).Encode(&hdr); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, 0, preludeLen+hbuf.Len()+len(file)-int(preludeLen+hlen))
	out = append(out, file[:preludeLen]...)
	binary.LittleEndian.PutUint32(out[12:16], uint32(hbuf.Len()))
	binary.LittleEndian.PutUint32(out[16:20], crc32.Checksum(hbuf.Bytes(), castagnoli))
	out = append(out, hbuf.Bytes()...)
	out = append(out, file[preludeLen+hlen:]...)
	return out
}

// TestRoundTripBitwiseAnySectionOrder is the core format property: a float64
// save → open → materialize returns every payload bit-for-bit, regardless of
// the order sections were laid out in the payload region.
func TestRoundTripBitwiseAnySectionOrder(t *testing.T) {
	st := tinyState()
	want, wantAux := expectedPayloads(t, st)
	testkit.Check(t, testkit.CheckConfig{Runs: 25}, func(g *testkit.G) error {
		testShuffleSections = func(secs []section) {
			g.Rng.Shuffle(len(secs), func(i, j int) { secs[i], secs[j] = secs[j], secs[i] })
		}
		defer func() { testShuffleSections = nil }()
		b := writeBytes(t, st, Options{})
		f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
		if err != nil {
			return err
		}
		defer f.Close()
		if f.Quantized() {
			return errors.New("unquantized file reports Quantized")
		}
		if got := len(f.Sections()); got != len(want)+len(wantAux) {
			return fmt.Errorf("directory holds %d sections, want %d", got, len(want)+len(wantAux))
		}
		for name, wv := range want {
			got, err := f.LoadSection(name)
			if err != nil {
				return err
			}
			if len(got) != len(wv) {
				return fmt.Errorf("section %q decoded %d values, want %d", name, len(got), len(wv))
			}
			for i := range wv {
				if math.Float64bits(got[i]) != math.Float64bits(wv[i]) {
					return fmt.Errorf("section %q value %d = %v, want bitwise %v", name, i, got[i], wv[i])
				}
			}
		}
		for name, wb := range wantAux {
			got, err := f.LoadSectionBytes(name)
			if err != nil {
				return err
			}
			if !bytes.Equal(got, wb) {
				return fmt.Errorf("aux section %q round-tripped to different bytes", name)
			}
		}
		// Materialize the whole state and spot-check reattachment routed the
		// payloads — matrix and aux structure alike — to the right slots.
		mst, err := f.Template()
		if err != nil {
			return err
		}
		if got := mst.Group.Pipe.PCA.Components.Data; !bitsEqual(got, want["group/pca"]) {
			return errors.New("materialized group PCA basis differs from the saved payload")
		}
		if got := mst.Group.Sparse.Im; !bitsEqual(got, want["group/cwt.im"]) {
			return errors.New("materialized kernel table differs from the saved payload")
		}
		if got := mst.Rd.Clf.SVM.Machines[0].SVs; len(got) != 2 || !bitsEqual(append(append([]float64{}, got[0]...), got[1]...), want["rd/clf/svm.0.sv"]) {
			return errors.New("materialized SVM support vectors differ from the saved payload")
		}
		// Aux-carried structure comes back exactly.
		gp, op := mst.Group.Pipe, st.Group.Pipe
		if len(gp.Points) != len(op.Points) || gp.Points[1] != op.Points[1] {
			return errors.New("materialized selected points differ from the saved state")
		}
		if len(gp.Pairs) != 1 || gp.Pairs[0].A != op.Pairs[0].A || !bitsEqual(gp.Pairs[0].KL, op.Pairs[0].KL) {
			return errors.New("materialized pair tables differ from the saved state")
		}
		if gp.Z == nil || !bitsEqual(gp.Z.Means, op.Z.Means) || !bitsEqual(gp.Z.Stds, op.Z.Stds) {
			return errors.New("materialized z-score moments differ from the saved state")
		}
		if !bitsEqual(gp.PCA.Mean, op.PCA.Mean) || !bitsEqual(gp.PCA.EigVals, op.PCA.EigVals) {
			return errors.New("materialized PCA mean/eigenvalues differ from the saved state")
		}
		gs, ws := mst.Group.Sparse, st.Group.Sparse
		if len(gs.Cells) != len(ws.Cells) || gs.Cells[1] != ws.Cells[1] ||
			len(gs.Lo) != len(ws.Lo) || gs.Lo[1] != ws.Lo[1] ||
			len(gs.Off) != len(ws.Off) || gs.Off[2] != ws.Off[2] {
			return errors.New("materialized kernel structure differs from the saved state")
		}
		// And the eager header really is stripped of the bulk.
		hs := f.HeaderState()
		if hs.Group.Pipe.Points != nil || hs.Group.Pipe.Z != nil || hs.Group.Pipe.PCA.Mean != nil {
			return errors.New("header state still carries aux-destined structure")
		}
		if hs.Group.Clf != nil || hs.Rd.Clf != nil {
			return errors.New("header state still carries classifier snapshots")
		}
		if hs.Group.Sparse.Cells != nil {
			return errors.New("header state still carries kernel cell structure")
		}
		return nil
	})
}

func bitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestQuantizedRoundTripExactRule pins the quantization contract: every
// decoded value is exactly float64(float32(x)) — the documented ≤2⁻²⁴
// relative rounding, stated as an equality rather than a tolerance.
func TestQuantizedRoundTripExactRule(t *testing.T) {
	st := tinyState()
	want, wantAux := expectedPayloads(t, st)
	f := openBytes(t, writeBytes(t, st, Options{Quantize: true}))
	if !f.Quantized() {
		t.Fatal("quantized file does not report Quantized")
	}
	// Aux blobs are exempt from quantization: byte-identical either way.
	for name, wb := range wantAux {
		got, err := f.LoadSectionBytes(name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, wb) {
			t.Fatalf("aux section %q altered by quantization", name)
		}
	}
	for name, wv := range want {
		got, err := f.LoadSection(name)
		if err != nil {
			t.Fatal(err)
		}
		for i, x := range wv {
			q := float64(float32(x))
			if math.Float64bits(got[i]) != math.Float64bits(q) {
				t.Fatalf("section %q value %d = %v, want float64(float32(%v)) = %v", name, i, got[i], x, q)
			}
			if x != 0 {
				if rel := math.Abs((q - x) / x); rel > math.Exp2(-24) {
					t.Fatalf("section %q value %d rounding %.3g exceeds the documented 2^-24 bound", name, i, rel)
				}
			}
		}
	}
	if _, err := f.Template(); err != nil {
		t.Fatalf("quantized template failed to materialize: %v", err)
	}
}

// TestOpenRejectsCraftedDirectories covers the Open-time directory screen:
// each hand-mutated header must be rejected with ErrFormat before any
// payload is touched.
func TestOpenRejectsCraftedDirectories(t *testing.T) {
	valid := writeBytes(t, tinyState(), Options{})
	cases := []struct {
		name   string
		mutate func(h *fileHeader)
	}{
		{"section past EOF", func(h *fileHeader) { h.Sections[0].Offset = 1 << 40 }},
		{"negative offset", func(h *fileHeader) { h.Sections[0].Offset = -8 }},
		{"impossible shape", func(h *fileHeader) { h.Sections[0].Rows = maxDim + 1 }},
		{"negative rows", func(h *fileHeader) { h.Sections[0].Rows = -1 }},
		{"overflowing product", func(h *fileHeader) { h.Sections[0].Rows = maxDim; h.Sections[0].Cols = maxDim }},
		{"duplicate name", func(h *fileHeader) { h.Sections[1].Name = h.Sections[0].Name }},
		{"unroutable name", func(h *fileHeader) { h.Sections[0].Name = "group/clfx" }},
		{"absent level", func(h *fileHeader) { h.Sections[0].Name = "rr/pca" }},
		{"kernel on table-less level", func(h *fileHeader) { h.Sections[0].Name = "g1/cwt.re" }},
		{"encoding disagrees with flags", func(h *fileHeader) { h.Sections[0].Encoding = EncFloat32 }},
		{"matrix claiming raw encoding", func(h *fileHeader) { h.Sections[0].Encoding = EncRaw }},
		{"aux claiming float encoding", func(h *fileHeader) {
			for i := range h.Sections {
				if h.Sections[i].Name == "group/aux" {
					h.Sections[i].Encoding = EncFloat64
				}
			}
		}},
		{"wrong schema", func(h *fileHeader) { h.Schema = Version + 1 }},
		{"missing state", func(h *fileHeader) { h.State = nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := rewriteHeader(t, valid, tc.mutate)
			_, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("crafted directory (%s) opened with err=%v, want ErrFormat", tc.name, err)
			}
		})
	}
}

// TestOpenRejectsBadPrelude covers the fixed-size region's own screen.
func TestOpenRejectsBadPrelude(t *testing.T) {
	valid := writeBytes(t, tinyState(), Options{})
	flip := func(b []byte, i int) []byte {
		out := append([]byte(nil), b...)
		out[i] ^= 0x40
		return out
	}
	cases := map[string][]byte{
		"empty":            {},
		"short prelude":    valid[:preludeLen-1],
		"bad magic":        flip(valid, 0),
		"future version":   flip(valid, 4),
		"header truncated": valid[:preludeLen+5],
		"header bit flip":  flip(valid, preludeLen+3),
		"header CRC flip":  flip(valid, 17),
		"huge header len":  flip(valid, 15),
	}
	for name, b := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := OpenReaderAt(bytes.NewReader(b), int64(len(b))); !errors.Is(err, ErrFormat) {
				t.Fatalf("open returned %v, want ErrFormat", err)
			}
		})
	}
	// The future-version message should tell the operator to upgrade, not
	// just reject.
	_, err := OpenReaderAt(bytes.NewReader(flip(valid, 4)), int64(len(valid)))
	if err == nil || !bytes.Contains([]byte(err.Error()), []byte("upgrade")) {
		t.Fatalf("future-version rejection %v does not point at upgrading", err)
	}
}

// TestIncompleteDirectoryCannotMaterialize drops one directory entry at a
// time from a valid file: Open still succeeds (the header is coherent), but
// Template must refuse — a template classifies with all of its payloads or
// with none of them.
func TestIncompleteDirectoryCannotMaterialize(t *testing.T) {
	valid := writeBytes(t, tinyState(), Options{})
	ref := openBytes(t, valid)
	for _, drop := range ref.Sections() {
		t.Run(drop.Name, func(t *testing.T) {
			b := rewriteHeader(t, valid, func(h *fileHeader) {
				keep := h.Sections[:0]
				for _, s := range h.Sections {
					if s.Name != drop.Name {
						keep = append(keep, s)
					}
				}
				h.Sections = keep
			})
			f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
			if err != nil {
				t.Fatalf("dropping %q should leave a coherent header, got %v", drop.Name, err)
			}
			defer f.Close()
			if _, err := f.Template(); !errors.Is(err, ErrFormat) {
				t.Fatalf("materialized without section %q (err=%v)", drop.Name, err)
			}
		})
	}
}

// TestWriterRejectsDefectiveStates pins the writer-side screens.
func TestWriterRejectsDefectiveStates(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil, Options{}); err == nil {
		t.Fatal("nil state accepted")
	}
	st := tinyState()
	st.Instr[2] = LevelState{Present: true} // present without pipe/clf
	if err := Write(&buf, st, Options{}); err == nil {
		t.Fatal("present level without snapshots accepted")
	}
	st = tinyState()
	st.Group.Pipe.PCA.Components.Rows = 7 // shape no longer matches the data
	if err := Write(&buf, st, Options{}); err == nil {
		t.Fatal("misshapen section accepted")
	}
	st = tinyState()
	st.Rd.Pipe.Points = nil // not a fitted pipeline: nothing was selected
	if err := Write(&buf, st, Options{}); err == nil {
		t.Fatal("pipeline without selected points accepted")
	}
}

// TestWriteDoesNotMutateState guards the aliasing contract: Write strips
// copies, never the caller's live state.
func TestWriteDoesNotMutateState(t *testing.T) {
	st := tinyState()
	writeBytes(t, st, Options{})
	if st.Group.Pipe.PCA.Components.Data == nil {
		t.Fatal("Write stripped the caller's pipeline state")
	}
	if st.Group.Clf.LDA.PooledFactor.Data == nil {
		t.Fatal("Write stripped the caller's classifier state")
	}
	if st.Group.Sparse.Re == nil {
		t.Fatal("Write stripped the caller's kernel table")
	}
	if st.Group.Pipe.Points == nil || st.Group.Pipe.Pairs == nil || st.Group.Pipe.Z == nil ||
		st.Group.Pipe.PCA.Mean == nil || st.Group.Pipe.PCA.EigVals == nil {
		t.Fatal("Write stripped the caller's aux-destined selection structure")
	}
	if st.Group.Sparse.Cells == nil || st.Group.Sparse.Lo == nil || st.Group.Sparse.Off == nil {
		t.Fatal("Write stripped the caller's kernel cell structure")
	}
}

// TestClosedFileRefusesLoads pins the close semantics: loads and
// materialization fail cleanly after Close, and Close is idempotent.
func TestClosedFileRefusesLoads(t *testing.T) {
	b := writeBytes(t, tinyState(), Options{})
	f, err := OpenReaderAt(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadSection("group/pca"); err != nil {
		t.Fatal(err)
	}
	if f.ResidentBytes() == 0 {
		t.Fatal("resident bytes not accounted after a load")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal("second Close not idempotent:", err)
	}
	if _, err := f.LoadSection("group/pca"); err == nil {
		t.Fatal("LoadSection succeeded on a closed file")
	}
	if _, err := f.Template(); err == nil {
		t.Fatal("Template succeeded on a closed file")
	}
}
