package store

import "repro/internal/obs"

// Always-live instruments, attached to whichever registry is default (the
// dsp sparse-counter pattern): counts survive registry swaps, and a server
// that installs its registry after templates opened still sees the totals.
//
//	store.opens            files opened (header decoded and validated)
//	store.sections.loaded  payload sections decoded (lazy faults)
//	store.sections.errors  payload sections rejected (CRC mismatch)
//	store.bytes.resident   decoded float64 bytes currently held by open files
var met = struct {
	opens          *obs.Counter
	sectionsLoaded *obs.Counter
	sectionErrors  *obs.Counter
	bytesResident  *obs.Gauge
}{obs.NewCounter(), obs.NewCounter(), obs.NewCounter(), obs.NewGauge()}

func init() {
	obs.OnDefault(func(r *obs.Registry) {
		r.Attach("store.opens", met.opens)
		r.Attach("store.sections.loaded", met.sectionsLoaded)
		r.Attach("store.sections.errors", met.sectionErrors)
		r.AttachGauge("store.bytes.resident", met.bytesResident)
	})
}
