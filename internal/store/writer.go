package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"strings"
)

// Options tunes Write.
type Options struct {
	// Quantize encodes every matrix section as float32 — half the bytes
	// (and half the resident set once materialized) for a bounded relative
	// rounding of 2⁻²⁴ per value. The e2e accuracy gate runs the full
	// held-out campaign against quantized templates to prove the per-level
	// success-rate floors hold.
	Quantize bool
}

// section is a directory entry still carrying its payload, writer-side.
// Exactly one of data (matrix sections) and raw (aux blobs) is set.
type section struct {
	info SectionInfo
	data []float64
	raw  []byte
}

// testShuffleSections, when set by a test, permutes the collected sections
// before offsets are assigned — the hook behind the "round-trips at any
// section order" property.
var testShuffleSections func([]section)

// collect splits a template state into the stripped header state and the
// big payload sections, without mutating the input (whose slices alias live
// classifier state).
func collect(st *TemplateState) (*TemplateState, []section, error) {
	if st == nil {
		return nil, nil, fmt.Errorf("store: nil template state")
	}
	out := &TemplateState{HaveRegs: st.HaveRegs, InstrClass: st.InstrClass}
	var secs []section
	seen := map[string]bool{}
	add := func(key, name string, rows, cols int, data []float64) error {
		full := key + "/" + name
		if rows < 0 || cols < 0 || int64(len(data)) != int64(rows)*int64(cols) {
			return fmt.Errorf("store: section %q claims %dx%d but holds %d values", full, rows, cols, len(data))
		}
		if seen[full] {
			return fmt.Errorf("store: duplicate section %q", full)
		}
		seen[full] = true
		secs = append(secs, section{info: SectionInfo{Name: full, Rows: rows, Cols: cols}, data: data})
		return nil
	}
	addRaw := func(key, name string, blob []byte) error {
		full := key + "/" + name
		if seen[full] {
			return fmt.Errorf("store: duplicate section %q", full)
		}
		seen[full] = true
		secs = append(secs, section{
			info: SectionInfo{Name: full, Rows: 1, Cols: len(blob), Encoding: EncRaw},
			raw:  blob,
		})
		return nil
	}
	src, dst := levels(st), levels(out)
	for i, r := range src {
		if !r.lvl.Present {
			continue
		}
		if r.lvl.Pipe == nil || r.lvl.Clf == nil {
			return nil, nil, fmt.Errorf("store: level %q is present without pipeline or classifier state", r.key)
		}
		if len(r.lvl.Pipe.Points) == 0 {
			return nil, nil, fmt.Errorf("store: level %q has no selected points — the state is not a fitted pipeline", r.key)
		}
		d := dst[i].lvl
		d.Present = true
		d.Pipe = r.lvl.Pipe.Strip()
		for _, s := range r.lvl.Pipe.Sections() {
			if err := add(r.key, s.Name, s.Rows, s.Cols, s.Data); err != nil {
				return nil, nil, err
			}
		}
		for _, s := range r.lvl.Clf.Sections() {
			if err := add(r.key, "clf/"+s.Name, s.Rows, s.Cols, s.Data); err != nil {
				return nil, nil, err
			}
		}
		aux := levelAux{
			Points:  r.lvl.Pipe.Points,
			Pairs:   r.lvl.Pipe.Pairs,
			PairIdx: r.lvl.Pipe.PairIdx,
			Z:       r.lvl.Pipe.Z,
			Clf:     r.lvl.Clf.Strip(),
		}
		// The stripped header copy keeps only shape; the bulky structure
		// moves into the aux blob. Strip returned fresh struct copies, so
		// nilling fields here never touches the caller's live state.
		d.Pipe.Points, d.Pipe.Pairs, d.Pipe.PairIdx, d.Pipe.Z = nil, nil, nil, nil
		if p := r.lvl.Pipe.PCA; p != nil {
			aux.PCAMean, aux.PCAEig = p.Mean, p.EigVals
			if d.Pipe.PCA != nil {
				d.Pipe.PCA.Mean, d.Pipe.PCA.EigVals = nil, nil
			}
		}
		if t := r.lvl.Sparse; t != nil {
			d.Sparse = t.Strip()
			aux.Cells, aux.Lo, aux.Off = t.Cells, t.Lo, t.Off
			d.Sparse.Cells, d.Sparse.Lo, d.Sparse.Off = nil, nil, nil
			if err := add(r.key, "cwt.re", 1, len(t.Re), t.Re); err != nil {
				return nil, nil, err
			}
			if err := add(r.key, "cwt.im", 1, len(t.Im), t.Im); err != nil {
				return nil, nil, err
			}
		}
		var abuf bytes.Buffer
		if err := gob.NewEncoder(&abuf).Encode(&aux); err != nil {
			return nil, nil, fmt.Errorf("store: encoding level %q aux: %w", r.key, err)
		}
		if err := addRaw(r.key, auxName, abuf.Bytes()); err != nil {
			return nil, nil, err
		}
	}
	return out, secs, nil
}

// encodeFloats packs values with the given encoding, little-endian.
func encodeFloats(data []float64, enc Encoding) []byte {
	if enc == EncFloat32 {
		b := make([]byte, 4*len(data))
		for i, v := range data {
			binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(float32(v)))
		}
		return b
	}
	b := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// Write emits st as a schema-v4 template file. The input state is not
// mutated (its payload slices typically alias a live Disassembler).
func Write(w io.Writer, st *TemplateState, opts Options) error {
	stripped, secs, err := collect(st)
	if err != nil {
		return err
	}
	if testShuffleSections != nil {
		testShuffleSections(secs)
	}
	enc := EncFloat64
	if opts.Quantize {
		enc = EncFloat32
	}
	hdr := fileHeader{Schema: Version, State: stripped}
	blobs := make([][]byte, len(secs))
	var off int64
	for i := range secs {
		var b []byte
		if secs[i].info.Encoding == EncRaw {
			b = secs[i].raw // aux blobs are exempt from quantization
		} else {
			b = encodeFloats(secs[i].data, enc)
			secs[i].info.Encoding = enc
		}
		secs[i].info.Offset = off
		secs[i].info.CRC = crc32.Checksum(b, castagnoli)
		blobs[i] = b
		off += int64(len(b))
		hdr.Sections = append(hdr.Sections, secs[i].info)
	}
	var hbuf bytes.Buffer
	if err := gob.NewEncoder(&hbuf).Encode(&hdr); err != nil {
		return fmt.Errorf("store: encoding header: %w", err)
	}
	if hbuf.Len() > math.MaxUint32 {
		return fmt.Errorf("store: header of %d bytes exceeds the format bound", hbuf.Len())
	}
	var pre [preludeLen]byte
	copy(pre[0:4], Magic)
	binary.LittleEndian.PutUint32(pre[4:8], Version)
	var flags uint32
	if opts.Quantize {
		flags |= flagQuantized
	}
	binary.LittleEndian.PutUint32(pre[8:12], flags)
	binary.LittleEndian.PutUint32(pre[12:16], uint32(hbuf.Len()))
	binary.LittleEndian.PutUint32(pre[16:20], crc32.Checksum(hbuf.Bytes(), castagnoli))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	if _, err := w.Write(hbuf.Bytes()); err != nil {
		return err
	}
	for _, b := range blobs {
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes st to path, removing the partial file on error so a
// failed conversion can never leave a truncated template for the registry
// to trip over.
func WriteFile(path string, st *TemplateState, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, st, opts); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// splitName parses a section name into its level key and payload path.
func splitName(name string) (key, rest string, ok bool) {
	i := strings.IndexByte(name, '/')
	if i <= 0 || i == len(name)-1 {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}
