package store

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"strings"
	"sync/atomic"

	"repro/internal/avr"
)

// File is an opened v4 template: header decoded and validated eagerly,
// payload sections untouched until LoadSection/Template ask for them.
// Concurrent LoadSection calls are safe; Close must not race Template (the
// core.Template handle serializes them).
type File struct {
	src        sectionSource
	size       int64
	quantized  bool
	payloadOff int64
	payloadLen int64
	hdr        fileHeader
	hdrBytes   []byte // private copy; Template re-decodes fresh state from it
	byName     map[string]int

	resident atomic.Int64 // decoded float64 bytes attributed to this file
	closed   atomic.Bool
}

// Open maps (or opens) a v4 template file and eagerly decodes its header.
// Defective files — wrong magic, unknown version, truncated regions, a
// directory that cannot be valid — yield an error wrapping ErrFormat and
// never a panic, for arbitrary input bytes (FuzzStoreOpen pins this).
func Open(path string) (*File, error) {
	src, size, err := openFileSource(path)
	if err != nil {
		return nil, err
	}
	f, err := fromSource(src, size)
	if err != nil {
		src.close()
		return nil, err
	}
	return f, nil
}

// OpenReaderAt opens a template from any io.ReaderAt — the in-memory path
// used by fuzzing and tests. The caller keeps ownership of r's lifetime.
func OpenReaderAt(r io.ReaderAt, size int64) (*File, error) {
	return fromSource(&readerAtSource{r: r}, size)
}

func fromSource(src sectionSource, size int64) (*File, error) {
	if size < preludeLen {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the fixed prelude", ErrFormat, size)
	}
	pre, err := src.bytes(0, preludeLen)
	if err != nil {
		return nil, err
	}
	if string(pre[0:4]) != Magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, pre[0:4])
	}
	if v := binary.LittleEndian.Uint32(pre[4:8]); v != Version {
		if v > Version {
			return nil, fmt.Errorf("%w: schema version %d is newer than this build supports (%d) — upgrade the tool", ErrFormat, v, Version)
		}
		return nil, fmt.Errorf("%w: schema version %d, want %d", ErrFormat, v, Version)
	}
	flags := binary.LittleEndian.Uint32(pre[8:12])
	hlen := int64(binary.LittleEndian.Uint32(pre[12:16]))
	if hlen == 0 || hlen > size-preludeLen {
		return nil, fmt.Errorf("%w: header of %d bytes does not fit the %d-byte file", ErrFormat, hlen, size)
	}
	hraw, err := src.bytes(preludeLen, hlen)
	if err != nil {
		return nil, err
	}
	if got, want := crc32.Checksum(hraw, castagnoli), binary.LittleEndian.Uint32(pre[16:20]); got != want {
		return nil, fmt.Errorf("%w: header CRC mismatch (corrupted header)", ErrFormat)
	}
	// Copy out of the (possibly mmap'd) region: the header copy must stay
	// valid for Template() re-decodes regardless of the mapping's fate.
	hdrBytes := append([]byte(nil), hraw...)
	var hdr fileHeader
	if err := gob.NewDecoder(bytes.NewReader(hdrBytes)).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("%w: decoding header gob: %v", ErrFormat, err)
	}
	if hdr.Schema != Version {
		return nil, fmt.Errorf("%w: header claims schema %d inside a version-%d file", ErrFormat, hdr.Schema, Version)
	}
	if hdr.State == nil {
		return nil, fmt.Errorf("%w: header carries no template state", ErrFormat)
	}
	f := &File{
		src:        src,
		size:       size,
		quantized:  flags&flagQuantized != 0,
		payloadOff: preludeLen + hlen,
		payloadLen: size - preludeLen - hlen,
		hdr:        hdr,
		hdrBytes:   hdrBytes,
		byName:     make(map[string]int, len(hdr.Sections)),
	}
	wantEnc := EncFloat64
	if f.quantized {
		wantEnc = EncFloat32
	}
	byKey := make(map[string]*LevelState, avr.NumGroups+3)
	for _, r := range levels(hdr.State) {
		byKey[r.key] = r.lvl
	}
	for i, s := range hdr.Sections {
		if _, dup := f.byName[s.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate section %q", ErrFormat, s.Name)
		}
		if err := routeCheck(byKey, s.Name); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		if _, rest, _ := splitName(s.Name); rest == auxName {
			if s.Encoding != EncRaw {
				return nil, fmt.Errorf("%w: aux section %q must be raw-encoded, claims %d", ErrFormat, s.Name, s.Encoding)
			}
		} else if s.Encoding != wantEnc {
			return nil, fmt.Errorf("%w: section %q encoding %d disagrees with the file flags", ErrFormat, s.Name, s.Encoding)
		}
		if s.Rows < 0 || s.Cols < 0 || s.Rows > maxDim || s.Cols > maxDim {
			return nil, fmt.Errorf("%w: section %q claims impossible shape %dx%d", ErrFormat, s.Name, s.Rows, s.Cols)
		}
		if n := s.byteLen(); s.Offset < 0 || n > f.payloadLen || s.Offset > f.payloadLen-n {
			return nil, fmt.Errorf("%w: section %q [%d,%d) lies past the end of the file", ErrFormat, s.Name, s.Offset, s.Offset+n)
		}
		f.byName[s.Name] = i
	}
	met.opens.Inc()
	return f, nil
}

// routeCheck validates that a directory name addresses a payload slot the
// header state actually has, so an unknown or misdirected section is an
// Open-time error rather than a surprise at materialization.
func routeCheck(byKey map[string]*LevelState, name string) error {
	key, rest, ok := splitName(name)
	if !ok {
		return fmt.Errorf("unparseable section name %q", name)
	}
	lvl, ok := byKey[key]
	if !ok {
		return fmt.Errorf("section %q addresses no known level", name)
	}
	if !lvl.Present {
		return fmt.Errorf("section %q addresses an absent level", name)
	}
	switch {
	case rest == "pca", rest == auxName, strings.HasPrefix(rest, "clf/") && len(rest) > len("clf/"):
		return nil
	case rest == "cwt.re", rest == "cwt.im":
		if lvl.Sparse == nil {
			return fmt.Errorf("section %q addresses a level without a kernel table", name)
		}
		return nil
	}
	return fmt.Errorf("unknown section kind %q", name)
}

// Quantized reports whether matrix sections are float32-encoded.
func (f *File) Quantized() bool { return f.quantized }

// Sections returns a copy of the section directory.
func (f *File) Sections() []SectionInfo {
	return append([]SectionInfo(nil), f.hdr.Sections...)
}

// PayloadOffset returns the file offset of the payload region — with
// SectionInfo.Offset, the absolute position of every section's bytes.
func (f *File) PayloadOffset() int64 { return f.payloadOff }

// HeaderState returns the eagerly decoded, stripped template state — enough
// for shape questions (trace length, sparse capability, class tables)
// without touching a section. Callers must treat it as read-only; Template
// hands out independent copies for materialization.
func (f *File) HeaderState() *TemplateState { return f.hdr.State }

// ResidentBytes returns the decoded float64 bytes currently attributed to
// this file's materialized sections.
func (f *File) ResidentBytes() int64 { return f.resident.Load() }

// sectionBytes reads and CRC-checks one section, returning its on-disk
// bytes (which may alias the mapping — callers copy or decode before the
// file can close).
func (f *File) sectionBytes(name string) (SectionInfo, []byte, error) {
	if f.closed.Load() {
		return SectionInfo{}, nil, fmt.Errorf("store: file is closed")
	}
	i, ok := f.byName[name]
	if !ok {
		return SectionInfo{}, nil, &SectionError{Section: name, Err: fmt.Errorf("%w: no such section", ErrFormat)}
	}
	info := f.hdr.Sections[i]
	raw, err := f.src.bytes(f.payloadOff+info.Offset, info.byteLen())
	if err != nil {
		return SectionInfo{}, nil, &SectionError{Section: name, Err: err}
	}
	if got := crc32.Checksum(raw, castagnoli); got != info.CRC {
		met.sectionErrors.Inc()
		return SectionInfo{}, nil, &SectionError{Section: name, Err: fmt.Errorf("%w: CRC mismatch (corrupted section)", ErrFormat)}
	}
	return info, raw, nil
}

// LoadSection reads, CRC-checks and decodes one matrix section. Corruption
// is reported as a SectionError naming the section (wrapping ErrFormat);
// other sections of the same file remain loadable. Aux sections hold gob
// blobs, not floats — load those with LoadSectionBytes.
func (f *File) LoadSection(name string) ([]float64, error) {
	info, raw, err := f.sectionBytes(name)
	if err != nil {
		return nil, err
	}
	if info.Encoding == EncRaw {
		return nil, &SectionError{Section: name, Err: errors.New("store: raw section holds no float payload (use LoadSectionBytes)")}
	}
	data := decodeFloats(raw, info.Encoding)
	met.sectionsLoaded.Inc()
	met.bytesResident.Add(float64(8 * len(data)))
	f.resident.Add(int64(8 * len(data)))
	return data, nil
}

// LoadSectionBytes reads and CRC-checks one section, returning a copy of
// its raw on-disk bytes — the gob blob for aux sections, the encoded float
// stream for matrix sections.
func (f *File) LoadSectionBytes(name string) ([]byte, error) {
	_, raw, err := f.sectionBytes(name)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), raw...)
	met.sectionsLoaded.Inc()
	met.bytesResident.Add(float64(len(out)))
	f.resident.Add(int64(len(out)))
	return out, nil
}

// decodeFloats unpacks a validated payload; len(b) is a multiple of the
// value size by construction (byteLen bounded the read).
func decodeFloats(b []byte, enc Encoding) []float64 {
	if enc == EncFloat32 {
		out := make([]float64, len(b)/4)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[4*i:])))
		}
		return out
	}
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// Template materializes the full template state: a fresh decode of the
// header gob with every section loaded, checked and reattached. Any
// section failure fails the whole call — a template can classify with all
// of its payloads or with none of them. The returned state is independent
// of the File (callers may mutate it) except that it shares the loaded
// section data.
func (f *File) Template() (*TemplateState, error) {
	if f.closed.Load() {
		return nil, fmt.Errorf("store: file is closed")
	}
	var hdr fileHeader
	if err := gob.NewDecoder(bytes.NewReader(f.hdrBytes)).Decode(&hdr); err != nil {
		// Unreachable for a header that decoded at Open; kept for safety.
		return nil, fmt.Errorf("%w: decoding header gob: %v", ErrFormat, err)
	}
	st := hdr.State
	refs := levels(st)
	byKey := make(map[string]*LevelState, len(refs))
	for _, r := range refs {
		byKey[r.key] = r.lvl
	}
	// Aux blobs graft first regardless of directory order: they carry the
	// classifier snapshots the matrix sections route into.
	for _, info := range f.hdr.Sections {
		key, rest, _ := splitName(info.Name) // validated at Open
		if rest != auxName {
			continue
		}
		blob, err := f.LoadSectionBytes(info.Name)
		if err != nil {
			return nil, err
		}
		if err := graftAux(byKey[key], blob); err != nil {
			return nil, &SectionError{Section: info.Name, Err: fmt.Errorf("%w: %v", ErrFormat, err)}
		}
	}
	for _, info := range f.hdr.Sections {
		if _, rest, _ := splitName(info.Name); rest == auxName {
			continue
		}
		data, err := f.LoadSection(info.Name)
		if err != nil {
			return nil, err
		}
		if err := route(byKey, info, data); err != nil {
			return nil, &SectionError{Section: info.Name, Err: fmt.Errorf("%w: %v", ErrFormat, err)}
		}
	}
	for _, r := range refs {
		if err := checkLevelComplete(r.lvl); err != nil {
			return nil, fmt.Errorf("%w: level %q: %v", ErrFormat, r.key, err)
		}
	}
	return st, nil
}

// graftAux decodes a level's aux blob and reattaches the selection and
// normalization structure the writer moved out of the eager header.
func graftAux(lvl *LevelState, blob []byte) error {
	var aux levelAux
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&aux); err != nil {
		return fmt.Errorf("decoding aux gob: %v", err)
	}
	if lvl.Pipe == nil {
		return errors.New("aux for a level without pipeline state")
	}
	if lvl.Pipe.Points != nil || lvl.Clf != nil {
		return errors.New("duplicate aux payload")
	}
	lvl.Pipe.Points = aux.Points
	lvl.Pipe.Pairs = aux.Pairs
	lvl.Pipe.PairIdx = aux.PairIdx
	lvl.Pipe.Z = aux.Z
	lvl.Clf = aux.Clf
	if lvl.Pipe.PCA != nil {
		lvl.Pipe.PCA.Mean, lvl.Pipe.PCA.EigVals = aux.PCAMean, aux.PCAEig
	}
	if lvl.Sparse == nil {
		if aux.Cells != nil || aux.Lo != nil || aux.Off != nil {
			return errors.New("aux carries kernel structure for a level without a table")
		}
		return nil
	}
	lvl.Sparse.Cells, lvl.Sparse.Lo, lvl.Sparse.Off = aux.Cells, aux.Lo, aux.Off
	return nil
}

// route reattaches one loaded payload to its slot in the fresh state copy.
func route(byKey map[string]*LevelState, info SectionInfo, data []float64) error {
	key, rest, _ := splitName(info.Name) // validated at Open
	lvl := byKey[key]
	switch {
	case rest == "pca":
		return lvl.Pipe.SetSection(rest, info.Rows, info.Cols, data)
	case strings.HasPrefix(rest, "clf/"):
		return lvl.Clf.SetSection(strings.TrimPrefix(rest, "clf/"), info.Rows, info.Cols, data)
	case rest == "cwt.re":
		if lvl.Sparse.Re != nil {
			return errors.New("duplicate kernel payload")
		}
		lvl.Sparse.Re = data
		return nil
	default: // "cwt.im", the only name routeCheck lets through
		if lvl.Sparse.Im != nil {
			return errors.New("duplicate kernel payload")
		}
		lvl.Sparse.Im = data
		return nil
	}
}

// checkLevelComplete rejects a level whose header promises payloads the
// directory never delivered — the "no partial-state template can ever
// classify" guarantee.
func checkLevelComplete(lvl *LevelState) error {
	if !lvl.Present {
		return nil
	}
	if err := lvl.Pipe.CheckComplete(); err != nil {
		return err
	}
	if lvl.Pipe != nil && len(lvl.Pipe.Points) == 0 {
		return errors.New("selection structure (aux section) not materialized")
	}
	if err := lvl.Clf.CheckComplete(); err != nil {
		return err
	}
	if lvl.Sparse != nil && (lvl.Sparse.Re == nil || lvl.Sparse.Im == nil) {
		return errors.New("sparse kernel payloads not materialized")
	}
	if lvl.Sparse != nil && (lvl.Sparse.Cells == nil || lvl.Sparse.Lo == nil || lvl.Sparse.Off == nil) {
		return errors.New("sparse kernel structure (aux section) not materialized")
	}
	return nil
}

// Close releases the mapping or descriptor and retires the file's resident
// bytes from the gauge. Materialized TemplateStates stay valid — their
// section data was decoded into ordinary heap slices.
func (f *File) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	met.bytesResident.Add(float64(-f.resident.Swap(0)))
	return f.src.close()
}
