// Package stats provides the univariate statistics the feature-selection
// stage is built on: Gaussian parameter estimation, the closed-form
// Kullback–Leibler divergence between Gaussians (the paper's Eq. 1 metric),
// and the normalizers used by covariate shift adaptation.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrTooFewSamples is returned by estimators that need at least 2 samples.
var ErrTooFewSamples = errors.New("stats: need at least 2 samples")

// ErrDegenerate is the typed sentinel for degenerate inputs: NaN/Inf samples
// or populations whose statistics cannot support the downstream pipeline
// (e.g. a constant feature). Callers unwrap it with errors.Is to reject a
// single trace or feature point without aborting a whole campaign.
var ErrDegenerate = errors.New("stats: degenerate input")

// MinSigma is the documented standard-deviation floor: every σ that enters a
// division or a logarithm (KL divergence, z-scores, per-trace normalization)
// is clamped to at least MinSigma, so a zero-variance population — a constant
// CWT coefficient, a flat trace — yields large-but-finite statistics instead
// of ±Inf or NaN.
const MinSigma = 1e-12

// AllFinite reports whether every value of xs is finite (no NaN, no ±Inf).
func AllFinite(xs []float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// Gaussian holds the parameters of a univariate normal distribution.
type Gaussian struct {
	Mean   float64
	StdDev float64
}

// EstimateGaussian fits a Gaussian to xs by sample mean and (n-1) standard
// deviation.
func EstimateGaussian(xs []float64) (Gaussian, error) {
	if len(xs) < 2 {
		return Gaussian{}, ErrTooFewSamples
	}
	if !AllFinite(xs) {
		return Gaussian{}, fmt.Errorf("%w: non-finite sample", ErrDegenerate)
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return Gaussian{Mean: m, StdDev: math.Sqrt(ss / float64(len(xs)-1))}, nil
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// minSigma is the internal alias for the exported MinSigma floor.
const minSigma = MinSigma

// KLGaussian returns D_KL(P‖Q) for univariate Gaussians P and Q using the
// closed form
//
//	D = log(σq/σp) + (σp² + (μp-μq)²)/(2σq²) − 1/2.
//
// This is the divergence the paper computes between the per-class CWT
// coefficient populations at each time–frequency point.
//
// Both standard deviations are clamped to MinSigma, so a zero-σ side (a
// constant feature point) produces a large finite divergence rather than
// ±Inf; NaN can still propagate from NaN means, which the selection layer
// detects and reports (see features.Selector.NotVaryingMask).
func KLGaussian(p, q Gaussian) float64 {
	sp := math.Max(p.StdDev, minSigma)
	sq := math.Max(q.StdDev, minSigma)
	d := p.Mean - q.Mean
	return math.Log(sq/sp) + (sp*sp+d*d)/(2*sq*sq) - 0.5
}

// SymmetricKLGaussian returns the symmetrized divergence
// (D_KL(P‖Q)+D_KL(Q‖P))/2, which is what we use for peak picking so the
// feature map does not depend on class ordering.
func SymmetricKLGaussian(p, q Gaussian) float64 {
	return 0.5 * (KLGaussian(p, q) + KLGaussian(q, p))
}

// KLGaussianFromSamples estimates Gaussians from the two sample sets and
// returns their symmetric KL divergence.
func KLGaussianFromSamples(xs, ys []float64) (float64, error) {
	p, err := EstimateGaussian(xs)
	if err != nil {
		return 0, fmt.Errorf("stats: estimating P: %w", err)
	}
	q, err := EstimateGaussian(ys)
	if err != nil {
		return 0, fmt.Errorf("stats: estimating Q: %w", err)
	}
	return SymmetricKLGaussian(p, q), nil
}

// ZScoreNormalizer standardizes each feature dimension with statistics
// learned from training data: x'ⱼ = (xⱼ − μⱼ)/σⱼ.
type ZScoreNormalizer struct {
	Means []float64
	Stds  []float64
}

// Fit learns per-dimension means and standard deviations from X (rows are
// samples).
func (z *ZScoreNormalizer) Fit(X [][]float64) error {
	if len(X) < 2 {
		return ErrTooFewSamples
	}
	p := len(X[0])
	z.Means = make([]float64, p)
	z.Stds = make([]float64, p)
	col := make([]float64, len(X))
	for j := 0; j < p; j++ {
		for i, row := range X {
			if len(row) != p {
				return fmt.Errorf("stats: row %d has %d dims, want %d", i, len(row), p)
			}
			col[i] = row[j]
		}
		if !AllFinite(col) {
			return fmt.Errorf("%w: non-finite value in feature column %d", ErrDegenerate, j)
		}
		z.Means[j] = Mean(col)
		z.Stds[j] = math.Max(StdDev(col), minSigma)
	}
	return nil
}

// Apply returns the standardized copy of x.
func (z *ZScoreNormalizer) Apply(x []float64) ([]float64, error) {
	if len(z.Means) == 0 {
		return nil, errors.New("stats: ZScoreNormalizer used before Fit")
	}
	if len(x) != len(z.Means) {
		return nil, fmt.Errorf("stats: Apply dim %d, fitted for %d", len(x), len(z.Means))
	}
	out := make([]float64, len(x))
	for j := range x {
		out[j] = (x[j] - z.Means[j]) / z.Stds[j]
	}
	return out, nil
}

// ApplyAll standardizes every row of X.
func (z *ZScoreNormalizer) ApplyAll(X [][]float64) ([][]float64, error) {
	out := make([][]float64, len(X))
	for i, row := range X {
		r, err := z.Apply(row)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// TraceNormParams returns the per-trace normalization parameters used by
// NormalizeTrace: the mean and the (population, minSigma-floored) standard
// deviation of x. Exposing them lets callers normalize a few selected points
// on the fly — (v − mean)/std, bit-identical to indexing the NormalizeTrace
// output — without materializing the full normalized vector.
func TraceNormParams(x []float64) (mean, std float64) {
	if len(x) == 0 {
		return 0, minSigma
	}
	m := Mean(x)
	var ss float64
	for _, v := range x {
		d := v - m
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(x)))
	if sd < minSigma {
		sd = minSigma
	}
	return m, sd
}

// NormalizeTrace standardizes a single feature vector by its own mean and
// standard deviation. This is the covariate-shift-adaptation normalization:
// a per-trace DC offset or gain (program- or device-induced) cancels exactly,
// because it shifts/scales every selected feature point of that trace
// together.
func NormalizeTrace(x []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	NormalizeTraceInto(out, x)
	return out
}

// NormalizeTraceInto writes the NormalizeTrace result of x into dst; dst and
// x may be the same slice (in-place normalization, used by the fit-time
// scalogram cache to avoid a second full-plane allocation per trace).
func NormalizeTraceInto(dst, x []float64) {
	m, sd := TraceNormParams(x)
	for i, v := range x {
		dst[i] = (v - m) / sd
	}
}

// Accuracy returns the fraction of positions where pred equals want.
func Accuracy(pred, want []int) (float64, error) {
	if len(pred) != len(want) {
		return 0, fmt.Errorf("stats: Accuracy length mismatch %d vs %d", len(pred), len(want))
	}
	if len(pred) == 0 {
		return 0, errors.New("stats: Accuracy of empty slice")
	}
	hit := 0
	for i := range pred {
		if pred[i] == want[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pred)), nil
}
