package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/testkit"
)

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Fatalf("mean = %g", Mean(xs))
	}
	// Sum of squared deviations = 32; unbiased variance = 32/7.
	testkit.InDelta(t, Variance(xs), 32.0/7, 1e-12, "variance")
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
}

func TestEstimateGaussian(t *testing.T) {
	if _, err := EstimateGaussian([]float64{1}); err == nil {
		t.Fatal("want ErrTooFewSamples")
	}
	g, err := EstimateGaussian([]float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if g.Mean != 2 {
		t.Fatalf("g = %+v", g)
	}
	testkit.InDelta(t, g.StdDev, math.Sqrt(2), 1e-12, "estimated stddev")
}

func TestKLGaussianIdentical(t *testing.T) {
	g := Gaussian{Mean: 1.5, StdDev: 0.3}
	testkit.InDelta(t, KLGaussian(g, g), 0, 1e-12, "KL(P‖P)")
}

func TestKLGaussianKnownValue(t *testing.T) {
	// P = N(0,1), Q = N(1,1): KL = 1/2 (mean shift of 1 with unit variance).
	p := Gaussian{Mean: 0, StdDev: 1}
	q := Gaussian{Mean: 1, StdDev: 1}
	testkit.InDelta(t, KLGaussian(p, q), 0.5, 1e-12, "KL(N(0,1)‖N(1,1))")
}

func TestKLGaussianAsymmetry(t *testing.T) {
	p := Gaussian{Mean: 0, StdDev: 1}
	q := Gaussian{Mean: 0, StdDev: 3}
	if KLGaussian(p, q) == KLGaussian(q, p) {
		t.Fatal("KL should be asymmetric for different variances")
	}
	testkit.InDelta(t, SymmetricKLGaussian(p, q), SymmetricKLGaussian(q, p), 1e-12,
		"symmetric KL under argument swap")
}

func TestKLNonNegativeProperty(t *testing.T) {
	f := func(m1, m2 float64, s1, s2 uint8) bool {
		p := Gaussian{Mean: math.Mod(m1, 100), StdDev: 0.01 + float64(s1)/16}
		q := Gaussian{Mean: math.Mod(m2, 100), StdDev: 0.01 + float64(s2)/16}
		return KLGaussian(p, q) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKLIncreasesWithMeanSeparationProperty(t *testing.T) {
	// With equal variances, KL is monotone in |μp−μq|.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := 0.5 + rng.Float64()
		d1 := rng.Float64() * 3
		d2 := d1 + 0.1 + rng.Float64()
		k1 := KLGaussian(Gaussian{0, s}, Gaussian{d1, s})
		k2 := KLGaussian(Gaussian{0, s}, Gaussian{d2, s})
		return k2 > k1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestKLGaussianFromSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	near := make([]float64, 500)
	far := make([]float64, 500)
	same := make([]float64, 500)
	for i := range near {
		near[i] = rng.NormFloat64()
		same[i] = rng.NormFloat64()
		far[i] = rng.NormFloat64() + 5
	}
	dSame, err := KLGaussianFromSamples(near, same)
	if err != nil {
		t.Fatal(err)
	}
	dFar, err := KLGaussianFromSamples(near, far)
	if err != nil {
		t.Fatal(err)
	}
	if dFar < 10*dSame {
		t.Fatalf("separated classes should have much larger KL: same=%g far=%g", dSame, dFar)
	}
	if _, err := KLGaussianFromSamples([]float64{1}, near); err == nil {
		t.Fatal("want error for too few samples")
	}
}

func TestZScoreNormalizer(t *testing.T) {
	X := [][]float64{
		{1, 10},
		{2, 20},
		{3, 30},
	}
	var z ZScoreNormalizer
	if _, err := z.Apply([]float64{1, 2}); err == nil {
		t.Fatal("want error before Fit")
	}
	if err := z.Fit(X); err != nil {
		t.Fatal(err)
	}
	out, err := z.ApplyAll(X)
	if err != nil {
		t.Fatal(err)
	}
	// Columns must have mean 0 and unit std after standardization.
	for j := 0; j < 2; j++ {
		col := []float64{out[0][j], out[1][j], out[2][j]}
		testkit.InDelta(t, Mean(col), 0, 1e-12, "standardized column mean")
		testkit.InDelta(t, StdDev(col), 1, 1e-12, "standardized column std")
	}
	if _, err := z.Apply([]float64{1}); err == nil {
		t.Fatal("want dimension error")
	}
	if err := z.Fit([][]float64{{1}}); err == nil {
		t.Fatal("want too-few-samples error")
	}
	if err := z.Fit([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("want ragged-row error")
	}
}

func TestNormalizeTraceRemovesOffsetAndGain(t *testing.T) {
	base := []float64{0.1, 0.9, -0.4, 0.3, 0.6, -0.2}
	shifted := make([]float64, len(base))
	for i, v := range base {
		shifted[i] = 1.7*v + 42 // gain + DC offset (the covariate shift model)
	}
	a := NormalizeTrace(base)
	b := NormalizeTrace(shifted)
	testkit.AllClose(t, b, a, 0, 1e-9, "normalization of gain+offset shifted trace")
}

func TestNormalizeTraceProperty(t *testing.T) {
	// Output always has (population) mean ~0 and std ~1 for non-constant input.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]float64, 10+int(rng.Int31n(50)))
		for i := range x {
			x[i] = rng.NormFloat64() * 5
		}
		y := NormalizeTrace(x)
		m := Mean(y)
		var ss float64
		for _, v := range y {
			ss += (v - m) * (v - m)
		}
		sd := math.Sqrt(ss / float64(len(y)))
		return testkit.Close(m, 0, 0, 1e-9) && testkit.Close(sd, 1, 0, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeTraceDegenerate(t *testing.T) {
	if out := NormalizeTrace(nil); len(out) != 0 {
		t.Fatal("empty input should yield empty output")
	}
	out := NormalizeTrace([]float64{5, 5, 5})
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("constant trace normalized to %v", out)
		}
	}
}

func TestAccuracy(t *testing.T) {
	acc, err := Accuracy([]int{1, 2, 3, 4}, []int{1, 2, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0.75 {
		t.Fatalf("accuracy = %g", acc)
	}
	if _, err := Accuracy([]int{1}, []int{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Accuracy(nil, nil); err == nil {
		t.Fatal("want empty error")
	}
}

// Regression: a zero-σ side (constant feature point) must yield a large but
// finite divergence — a single flat CWT point used to send the between-class
// KL map to ±Inf and poison peak picking.
func TestKLGaussianZeroSigmaStaysFinite(t *testing.T) {
	flat := Gaussian{Mean: 1.5, StdDev: 0}
	spread := Gaussian{Mean: 0, StdDev: 2}
	for _, d := range []float64{
		KLGaussian(flat, spread),
		KLGaussian(spread, flat),
		KLGaussian(flat, flat),
		SymmetricKLGaussian(flat, spread),
		SymmetricKLGaussian(flat, flat),
	} {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("divergence with zero sigma is not finite: %v", d)
		}
	}
	// Two distinct constants must still register as strongly distinct.
	other := Gaussian{Mean: -1.5, StdDev: 0}
	if d := SymmetricKLGaussian(flat, other); d <= 0 || math.IsInf(d, 0) {
		t.Fatalf("divergence between distinct constants = %v, want large finite positive", d)
	}
}

func TestEstimateGaussianRejectsNonFinite(t *testing.T) {
	for _, xs := range [][]float64{
		{1, math.NaN(), 3},
		{1, math.Inf(1), 3},
		{math.Inf(-1), 2, 3},
	} {
		if _, err := EstimateGaussian(xs); !errors.Is(err, ErrDegenerate) {
			t.Fatalf("EstimateGaussian(%v) err = %v, want ErrDegenerate", xs, err)
		}
	}
}

func TestZScoreFitRejectsNonFinite(t *testing.T) {
	z := &ZScoreNormalizer{}
	X := [][]float64{{1, 2}, {3, math.NaN()}, {5, 6}}
	if err := z.Fit(X); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("Fit err = %v, want ErrDegenerate", err)
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{0, -1, 2.5}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float64{0, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("non-finite slice reported finite")
	}
}
