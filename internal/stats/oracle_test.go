package stats

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/testkit"
)

// KLGaussian's closed form is checked against testkit.KLGaussianQuadrature,
// which integrates ∫p·ln(p/q) numerically and never touches the closed form.
// Simpson's rule at 2^14 steps over ±12σ is accurate to ~1e-10 on O(1)
// divergences, so the comparison runs at testkit.KLTol (1e-6 relative) with a
// small absolute floor for near-zero divergences.

func TestKLGaussianMatchesQuadrature(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 40}, func(g *testkit.G) error {
		p := Gaussian{Mean: g.Float64(-5, 5), StdDev: g.Float64(0.05, 3)}
		q := Gaussian{Mean: g.Float64(-5, 5), StdDev: g.Float64(0.05, 3)}
		got := KLGaussian(p, q)
		want := testkit.KLGaussianQuadrature(p.Mean, p.StdDev, q.Mean, q.StdDev, 1<<14)
		if !testkit.Close(got, want, testkit.KLTol, 1e-8) {
			return fmt.Errorf("KL(%+v ‖ %+v): closed form %g, quadrature %g (diff %g)",
				p, q, got, want, got-want)
		}
		return nil
	})
}

// TestKLGaussianProperties pins the divergence axioms the selection layer
// relies on: non-negativity, identity of indiscernibles, and exact symmetry
// of the symmetrized form under argument swap (float addition commutes, so
// the swap must agree bitwise).
func TestKLGaussianProperties(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 60}, func(g *testkit.G) error {
		p := Gaussian{Mean: g.Float64(-5, 5), StdDev: g.Float64(0.01, 4)}
		q := Gaussian{Mean: g.Float64(-5, 5), StdDev: g.Float64(0.01, 4)}
		if d := KLGaussian(p, q); d < 0 || math.IsNaN(d) {
			return fmt.Errorf("KL(%+v ‖ %+v) = %g, want >= 0", p, q, d)
		}
		if d := KLGaussian(p, p); math.Abs(d) > 1e-15 {
			return fmt.Errorf("KL(p‖p) = %g for %+v, want 0", d, p)
		}
		ab := SymmetricKLGaussian(p, q)
		ba := SymmetricKLGaussian(q, p)
		if math.Float64bits(ab) != math.Float64bits(ba) {
			return fmt.Errorf("symmetric KL not symmetric: %g vs %g for %+v, %+v", ab, ba, p, q)
		}
		return nil
	})
}

// TestKLGaussianZeroSigmaClamp pins the MinSigma behavior: a constant
// (zero-σ) side yields a large finite divergence, never ±Inf or NaN.
func TestKLGaussianZeroSigmaClamp(t *testing.T) {
	for _, tc := range []struct{ p, q Gaussian }{
		{Gaussian{Mean: 0, StdDev: 0}, Gaussian{Mean: 1, StdDev: 1}},
		{Gaussian{Mean: 1, StdDev: 1}, Gaussian{Mean: 0, StdDev: 0}},
		{Gaussian{Mean: 0, StdDev: 0}, Gaussian{Mean: 0, StdDev: 0}},
	} {
		d := KLGaussian(tc.p, tc.q)
		if math.IsNaN(d) || math.IsInf(d, 0) || d < 0 {
			t.Fatalf("KL(%+v ‖ %+v) = %g, want finite and non-negative", tc.p, tc.q, d)
		}
	}
}

// TestEstimateGaussianMatchesMoments cross-checks the fitted parameters
// against Mean/StdDev computed independently over the same samples.
func TestEstimateGaussianMatchesMoments(t *testing.T) {
	testkit.Check(t, testkit.CheckConfig{Runs: 20}, func(g *testkit.G) error {
		xs := g.Trace(g.Size(2, 400))
		got, err := EstimateGaussian(xs)
		if err != nil {
			return err
		}
		if !testkit.Close(got.Mean, Mean(xs), 1e-12, 1e-12) {
			return fmt.Errorf("fitted mean %g, Mean() %g", got.Mean, Mean(xs))
		}
		if !testkit.Close(got.StdDev, StdDev(xs), 1e-12, 1e-12) {
			return fmt.Errorf("fitted sigma %g, StdDev() %g", got.StdDev, StdDev(xs))
		}
		return nil
	})
}
